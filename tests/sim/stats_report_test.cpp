// stats_report_test.cpp — statistics report formatting and hot-spot
// analysis.
#include "src/sim/stats_report.hpp"

#include <gtest/gtest.h>

#include <array>

namespace hmcsim::sim {
namespace {

class StatsReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Simulator::create(Config::hmc_4link_4gb(), sim_).ok());
  }

  void roundtrip(std::uint64_t addr, std::uint32_t link = 0) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = addr;
    ASSERT_TRUE(sim_->send(rd, link).ok());
    while (!sim_->rsp_ready(link)) {
      sim_->clock();
    }
    Response rsp;
    ASSERT_TRUE(sim_->recv(link, rsp).ok());
  }

  std::unique_ptr<Simulator> sim_;
};

TEST_F(StatsReportTest, HistogramCountsPerVault) {
  roundtrip(0);        // Vault 0.
  roundtrip(0);        // Vault 0.
  roundtrip(64);       // Vault 1.
  const auto hist = vault_histogram(*sim_, 0);
  ASSERT_EQ(hist.size(), 32U);
  EXPECT_EQ(hist[0], 2U);
  EXPECT_EQ(hist[1], 1U);
  EXPECT_EQ(hist[2], 0U);
}

TEST_F(StatsReportTest, HotspotFactorSingleAddress) {
  for (int i = 0; i < 10; ++i) {
    roundtrip(0x4000);  // One vault only.
  }
  EXPECT_DOUBLE_EQ(hotspot_factor(*sim_, 0), 1.0);
}

TEST_F(StatsReportTest, HotspotFactorUniformStream) {
  for (std::uint64_t block = 0; block < 32; ++block) {
    roundtrip(block * 64);
  }
  EXPECT_DOUBLE_EQ(hotspot_factor(*sim_, 0), 1.0 / 32.0);
}

TEST_F(StatsReportTest, HotspotFactorIdleIsZero) {
  EXPECT_EQ(hotspot_factor(*sim_, 0), 0.0);
}

TEST_F(StatsReportTest, TextReportContainsKeySections) {
  roundtrip(0x4000, 2);
  const std::string report = format_stats(*sim_);
  EXPECT_NE(report.find("configuration: 4Link-4GB"), std::string::npos);
  EXPECT_NE(report.find("device 0"), std::string::npos);
  EXPECT_NE(report.find("rqsts=1"), std::string::npos);
  EXPECT_NE(report.find("hotspot factor"), std::string::npos);
  EXPECT_NE(report.find("link 2"), std::string::npos);
}

TEST_F(StatsReportTest, CsvHasVaultAndLinkRows) {
  roundtrip(0);
  const std::string csv = format_stats_csv(*sim_);
  EXPECT_EQ(csv.find("section,dev,index"), 0U);
  EXPECT_NE(csv.find("vault,0,0,1"), std::string::npos);
  EXPECT_NE(csv.find("link,0,0,1"), std::string::npos);
  // 32 vault rows + 4 link rows + header.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1 + 32 + 4);
}

}  // namespace
}  // namespace hmcsim::sim
