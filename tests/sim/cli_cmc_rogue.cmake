# cli_cmc_rogue.cmake — deterministic CMC fault-containment run via the CLI.
#
# Drives the deliberately misbehaving hmc_rogue plugin (plain failures,
# response-buffer overruns, memory-budget busts, null-pointer service
# calls) alongside the well-behaved builtin satinc op, three times:
#   1. active-set scheduling        -> cli_cmc_rogue_active.json
#   2. active-set again             -> cli_cmc_rogue_repeat.json  (reproducibility)
#   3. --exhaustive-clock           -> cli_cmc_rogue_golden.json  (equivalence)
# All three stats documents must be byte-identical, the rogue slot must end
# the run quarantined with failures/guard-violations recorded, and the
# well-behaved neighbour must stay clean. CI copies the active document
# next to the benchmark artifacts as BENCH_cmc_rogue_stats.json.
# Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DROGUE=<hmc_rogue.so> -DOUT_DIR=<dir> \
#         -P cli_cmc_rogue.cmake
if(NOT DEFINED CLI OR NOT DEFINED ROGUE OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DROGUE=<so> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

function(run_rogue json_path extra_flags)
  execute_process(
    COMMAND "${CLI}" rogue "${ROGUE}" ${extra_flags}
            --stats-json "${json_path}"
    OUTPUT_VARIABLE run_stdout
    ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
  endif()
  if(NOT EXISTS "${json_path}")
    message(FATAL_ERROR "--stats-json wrote no file at ${json_path}")
  endif()
endfunction()

set(active_json "${OUT_DIR}/cli_cmc_rogue_active.json")
set(repeat_json "${OUT_DIR}/cli_cmc_rogue_repeat.json")
set(golden_json "${OUT_DIR}/cli_cmc_rogue_golden.json")
run_rogue("${active_json}" "")
run_rogue("${repeat_json}" "")
run_rogue("${golden_json}" "--exhaustive-clock")

file(READ "${active_json}" active)
file(READ "${repeat_json}" repeat)
file(READ "${golden_json}" golden)
if(NOT active STREQUAL repeat)
  message(FATAL_ERROR "same workload, different stats: rogue run is not deterministic")
endif()
if(NOT active STREQUAL golden)
  message(FATAL_ERROR "active-set and exhaustive schedulers diverge under CMC faults")
endif()

# The rogue slot must have tripped the quarantine, and both failure classes
# (plain failures and guard violations) must be on the books.
if(NOT active MATCHES "\"quarantined\": 1")
  message(FATAL_ERROR "rogue slot never quarantined:\n${active}")
endif()
if(NOT active MATCHES "\"failures\": [1-9]")
  message(FATAL_ERROR "no CMC failures recorded:\n${active}")
endif()
if(NOT active MATCHES "\"guard_violations\": [1-9]")
  message(FATAL_ERROR "no guard violations recorded:\n${active}")
endif()
# The well-behaved neighbour must be untouched: its failures counter stays
# zero (the rogue's own counter saturates at the fail threshold, so a
# second "failures": 0 entry can only belong to satinc).
if(NOT active MATCHES "\"failures\": 0")
  message(FATAL_ERROR "well-behaved satinc op reported failures:\n${active}")
endif()
