// metrics_export_test.cpp — golden-file guard for the text/CSV reports and
// a round-trip check for the JSON export.
//
// The text and CSV literals below were captured from the seed tree (the
// last revision whose reports rendered from the ad-hoc stats structs) on a
// fixed 9-operation workload. The registry-backed renderers must reproduce
// them byte for byte; the text report may only append new sections (the
// latency block) after the seed content.
#include "src/sim/sim_stats.hpp"
#include "src/sim/stats_report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>

namespace hmcsim::sim {
namespace {

/// Minimal JSON reader for the export's subset (objects, strings, numbers
/// — the renderer emits no arrays). Flattens leaves to dotted paths.
class FlatJson {
 public:
  static std::map<std::string, std::string> parse(const std::string& text) {
    FlatJson p(text);
    p.skip_ws();
    p.parse_object("");
    return std::move(p.leaves_);
  }

 private:
  explicit FlatJson(const std::string& text) : text_(text) {}

  void parse_object(const std::string& prefix) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (peek() == '{') {
        parse_object(path);
      } else if (peek() == '"') {
        leaves_[path] = parse_string();
      } else {
        leaves_[path] = parse_number();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        out += text_[pos_ + 1];
        pos_ += 2;
      } else {
        out += text_[pos_++];
      }
    }
    expect('"');
    return out;
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number at offset " << start;
    return text_.substr(start, pos_ - start);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    ASSERT_LT(pos_, text_.size()) << "unexpected end of JSON";
    ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::map<std::string, std::string> leaves_;
};

/// Drive the fixed golden workload: 9 operations spread over all 4 links
/// and 4 vaults, fully drained.
void run_golden_workload(Simulator& sim) {
  struct Op {
    spec::Rqst rqst;
    std::uint64_t addr;
    std::uint32_t link;
    bool has_payload;
  };
  const Op ops[] = {
      {spec::Rqst::WR16, 0x0000, 0, true},
      {spec::Rqst::WR16, 0x0040, 1, true},
      {spec::Rqst::RD16, 0x0000, 0, false},
      {spec::Rqst::RD16, 0x0040, 1, false},
      {spec::Rqst::RD16, 0x0080, 2, false},
      {spec::Rqst::INC8, 0x0000, 0, false},
      {spec::Rqst::INC8, 0x00C0, 3, false},
      {spec::Rqst::RD16, 0x0000, 2, false},
      {spec::Rqst::RD16, 0x0000, 3, false},
  };
  static const std::uint64_t payload[2] = {0x1111, 0x2222};
  std::uint16_t tag = 0;
  for (const Op& op : ops) {
    spec::RqstParams p;
    p.rqst = op.rqst;
    p.addr = op.addr;
    p.tag = tag++;
    if (op.has_payload) {
      p.payload = payload;
    }
    ASSERT_TRUE(sim.send(p, op.link).ok());
  }
  std::uint32_t received = 0;
  for (int i = 0; i < 100 && received < 9; ++i) {
    sim.clock();
    for (std::uint32_t link = 0; link < 4; ++link) {
      Response rsp;
      while (sim.recv(link, rsp).ok()) {
        ++received;
      }
    }
  }
  ASSERT_EQ(received, 9U);
}

class MetricsExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Simulator::create(Config::hmc_4link_4gb(), sim_).ok());
  }

  std::unique_ptr<Simulator> sim_;
};

TEST_F(MetricsExportTest, TextReportMatchesSeedGolden) {
  run_golden_workload(*sim_);
  const std::string seed =
      "configuration: 4Link-4GB devs=1 vaults=32 banks/vault=16 block=64B "
      "rqstq=64 xbarq=128\n"
      "cycle: 3\n"
      "device 0: rqsts=9 rsps=9 amo=2 cmc=0 errors=0\n"
      "  flits: rqst=11 rsp=14 fwd_rqst=0 fwd_rsp=0\n"
      "  stalls: send=0 xbar_rqst=0 xbar_rsp=0 vault_rsp=0 "
      "bank_conflicts=0\n"
      "  hotspot factor: 0.555556 (busiest vaults: 0:5 1:2 2:1 3:1)\n"
      "  link 0: rqst=3 (4 flits) rsp=3 (4 flits) stalls=0\n"
      "  link 1: rqst=2 (3 flits) rsp=2 (3 flits) stalls=0\n"
      "  link 2: rqst=2 (2 flits) rsp=2 (4 flits) stalls=0\n"
      "  link 3: rqst=2 (2 flits) rsp=2 (3 flits) stalls=0\n";
  const std::string report = format_stats(*sim_);
  // Byte-identical prefix; the registry-era report appends the latency
  // distribution after the seed sections.
  ASSERT_GE(report.size(), seed.size());
  EXPECT_EQ(report.substr(0, seed.size()), seed);
  EXPECT_NE(report.find("latency: count=9"), std::string::npos);
}

TEST_F(MetricsExportTest, CsvReportMatchesSeedGolden) {
  run_golden_workload(*sim_);
  const std::string csv = format_stats_csv(*sim_);
  EXPECT_EQ(csv.find("section,dev,index,rqsts,rsps,flits_in,flits_out,"
                     "stalls\n"),
            0U);
  EXPECT_NE(csv.find("vault,0,0,5,5,,,0\n"), std::string::npos);
  EXPECT_NE(csv.find("vault,0,1,2,2,,,0\n"), std::string::npos);
  EXPECT_NE(csv.find("vault,0,2,1,1,,,0\n"), std::string::npos);
  EXPECT_NE(csv.find("vault,0,3,1,1,,,0\n"), std::string::npos);
  EXPECT_NE(csv.find("link,0,0,3,3,4,4,0\n"), std::string::npos);
  EXPECT_NE(csv.find("link,0,1,2,2,3,3,0\n"), std::string::npos);
  EXPECT_NE(csv.find("link,0,2,2,2,2,4,0\n"), std::string::npos);
  EXPECT_NE(csv.find("link,0,3,2,2,2,3,0\n"), std::string::npos);
  const auto lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 1U + 32U + 4U);
}

TEST_F(MetricsExportTest, JsonRoundTripsEveryRegistryValue) {
  run_golden_workload(*sim_);
  const std::string json = format_stats_json(*sim_);
  const auto flat = FlatJson::parse(json);
  EXPECT_EQ(flat.at("schema_version"), "1");
  EXPECT_EQ(flat.at("cycle"), std::to_string(sim_->cycle()));
  EXPECT_FALSE(flat.at("config").empty());

  // Every counter in the registry must appear in the document with its
  // exact value, nested under "stats." along its dotted path.
  std::size_t counters_checked = 0;
  sim_->metrics().for_each(
      [&flat, &counters_checked](std::string_view path, metrics::StatKind,
                                 const metrics::Counter* c,
                                 const metrics::Gauge*,
                                 const metrics::Histogram* h) {
        if (c != nullptr) {
          const auto it = flat.find("stats." + std::string(path));
          ASSERT_NE(it, flat.end()) << path;
          EXPECT_EQ(it->second, std::to_string(c->value())) << path;
          ++counters_checked;
        } else if (h != nullptr) {
          const auto it = flat.find("stats." + std::string(path) + ".count");
          ASSERT_NE(it, flat.end()) << path;
          EXPECT_EQ(it->second, std::to_string(h->count())) << path;
        }
      });
  EXPECT_GT(counters_checked, 400U);  // 32 vaults x 7 + banks + links + ...

  // The aggregate SimStats view and the JSON agree on the headline totals.
  const SimStats s = collect_stats(*sim_);
  EXPECT_EQ(flat.at("stats.cube0.quad0.vault0.rqsts_processed"), "5");
  std::uint64_t rqst_flits = 0;
  for (int l = 0; l < 4; ++l) {
    rqst_flits += static_cast<std::uint64_t>(std::stoull(
        flat.at("stats.cube0.link" + std::to_string(l) + ".rqst_flits")));
  }
  EXPECT_EQ(rqst_flits, s.rqst_flits);
  EXPECT_EQ(flat.at("stats.host.latency.count"), "9");
}

TEST_F(MetricsExportTest, StatsEveryCallbackFires) {
  int fired = 0;
  sim_->set_stats_interval(2, [&fired](Simulator&) { ++fired; });
  for (int i = 0; i < 10; ++i) {
    sim_->clock();
  }
  EXPECT_EQ(fired, 5);
  sim_->set_stats_interval(0, nullptr);  // Disarm.
  for (int i = 0; i < 4; ++i) {
    sim_->clock();
  }
  EXPECT_EQ(fired, 5);
}

// Multi-device chains and zero-traffic devices: the hot-spot helpers read
// the registry per device and must neither mix devices nor divide by zero.
TEST(MetricsHotspotTest, ChainSeparatesDevicesAndIdleDeviceIsZero) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 2;
  std::unique_ptr<Simulator> sim;
  ASSERT_TRUE(Simulator::create(cfg, sim).ok());

  // Traffic for cube 1 only; cube 0 merely forwards.
  for (int i = 0; i < 4; ++i) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0x40;
    rd.cub = 1;
    rd.tag = static_cast<std::uint16_t>(i);
    Status s = sim->send(rd, 0);
    int guard = 0;
    while (s.stalled() && guard++ < 100) {
      sim->clock();
      s = sim->send(rd, 0);
    }
    ASSERT_TRUE(s.ok());
    Response rsp;
    guard = 0;
    while (!sim->rsp_ready(0) && guard++ < 1000) {
      sim->clock();
    }
    ASSERT_TRUE(sim->recv(0, rsp).ok());
  }

  const auto h0 = vault_histogram(*sim, 0);
  const auto h1 = vault_histogram(*sim, 1);
  ASSERT_EQ(h0.size(), 32U);
  ASSERT_EQ(h1.size(), 32U);
  std::uint64_t total0 = 0;
  for (const std::uint64_t v : h0) {
    total0 += v;
  }
  EXPECT_EQ(total0, 0U);  // Forwarding does not touch cube 0's vaults.
  EXPECT_EQ(h1[1], 4U);   // All four reads landed in cube 1, vault 1.

  // Zero-traffic device: guard against divide-by-zero, report 0.0.
  EXPECT_EQ(hotspot_factor(*sim, 0), 0.0);
  EXPECT_DOUBLE_EQ(hotspot_factor(*sim, 1), 1.0);
}

}  // namespace
}  // namespace hmcsim::sim
