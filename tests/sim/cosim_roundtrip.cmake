# cosim_roundtrip.cmake — server <-> client processes over shm rings.
#
# Launches a real hmcsim_server with two racing cosim_client processes,
# twice, and demands byte-identical stats JSON: admission order must be a
# pure function of the per-client workloads (client slots), never of
# accept/scheduling races. Then smokes `hmcsim_cli serve` over the same
# workload.
# Invoked as:
#   cmake -DSERVER=<hmcsim_server> -DCLI=<hmcsim_cli>
#         -DCLIENT=<cosim_client> -DOUT_DIR=<dir> -P cosim_roundtrip.cmake
if(NOT DEFINED SERVER OR NOT DEFINED CLI OR NOT DEFINED CLIENT
   OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DSERVER=<exe> -DCLI=<exe> -DCLIENT=<exe> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

# One server + two clients, all concurrent; the client library retries
# connect for up to 10 s, so launch order cannot race.
function(run_cosim server_cmd socket json_path)
  execute_process(
    COMMAND bash -c "\
${server_cmd} & srv=$!; \
'${CLIENT}' '${socket}' 0 128 16 & c0=$!; \
'${CLIENT}' '${socket}' 1 128 16; rc1=$?; \
wait $c0; rc0=$?; \
wait $srv; rcs=$?; \
exit $((rc0 | rc1 | rcs))"
    OUTPUT_VARIABLE run_stdout
    ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "cosim run exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
  endif()
  if(NOT EXISTS "${json_path}")
    message(FATAL_ERROR "no stats JSON at ${json_path}\n${run_stderr}")
  endif()
endfunction()

set(sock_a "${OUT_DIR}/cosim_a.sock")
set(sock_b "${OUT_DIR}/cosim_b.sock")
set(sock_c "${OUT_DIR}/cosim_c.sock")
set(json_a "${OUT_DIR}/cosim_a.json")
set(json_b "${OUT_DIR}/cosim_b.json")
set(json_c "${OUT_DIR}/cosim_c.json")

run_cosim("'${SERVER}' --socket '${sock_a}' --clients 2 --quantum 32 --stats-json '${json_a}'" "${sock_a}" "${json_a}")
run_cosim("'${SERVER}' --socket '${sock_b}' --clients 2 --quantum 32 --stats-json '${json_b}'" "${sock_b}" "${json_b}")

file(READ "${json_a}" run_a)
file(READ "${json_b}" run_b)
if(NOT run_a STREQUAL run_b)
  message(FATAL_ERROR "two identical cosim runs produced different stats: admission is racing on client arrival order")
endif()
if(NOT run_a MATCHES "\"rqst_packets\"")
  message(FATAL_ERROR "cosim stats JSON lacks link counters:\n${run_a}")
endif()

# Same workload through `hmcsim_cli serve` (frontend-registry path).
run_cosim("'${CLI}' serve '${sock_c}' --clients 2 --quantum 32 --stats-json '${json_c}'" "${sock_c}" "${json_c}")
file(READ "${json_c}" run_c)
if(NOT run_c MATCHES "\"rqst_packets\"")
  message(FATAL_ERROR "cli serve stats JSON lacks link counters:\n${run_c}")
endif()
