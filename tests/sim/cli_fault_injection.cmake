# cli_fault_injection.cmake — deterministic DRAM fault run via the CLI.
#
# Drives the synthetic load generator with a fixed fault seed, a heavy
# transient rate, stuck-at cells and the patrol scrubber, three times:
#   1. active-set scheduling        -> cli_fault_active.json
#   2. active-set again (same seed) -> cli_fault_repeat.json  (reproducibility)
#   3. --exhaustive-clock           -> cli_fault_golden.json  (equivalence)
# All three stats documents must be byte-identical — the fault schedule is
# a pure function of the seed and the request stream, and the scrubber
# must not perturb the active-set fast-forward — and the ECC machinery
# must actually have fired (a zero-injection run would validate nothing).
# CI copies cli_fault_active.json next to the benchmark artifacts as
# BENCH_fault_injection.json. Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DOUT_DIR=<dir> -P cli_fault_injection.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

set(fault_args synthetic --pattern uniform --count 2048 --rate 0.5
    --seed 777 --dram-fault-ppm 100000 --dram-fault-seed 0xFA117
    --scrub-interval 64 --stuck-faults 32)

function(run_faulty json_path extra_flags)
  execute_process(
    COMMAND "${CLI}" ${fault_args} ${extra_flags}
            --stats-json "${json_path}"
    OUTPUT_VARIABLE run_stdout
    ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
  endif()
  if(NOT EXISTS "${json_path}")
    message(FATAL_ERROR "--stats-json wrote no file at ${json_path}")
  endif()
endfunction()

set(active_json "${OUT_DIR}/cli_fault_active.json")
set(repeat_json "${OUT_DIR}/cli_fault_repeat.json")
set(golden_json "${OUT_DIR}/cli_fault_golden.json")
run_faulty("${active_json}" "")
run_faulty("${repeat_json}" "")
run_faulty("${golden_json}" "--exhaustive-clock")

file(READ "${active_json}" active)
file(READ "${repeat_json}" repeat)
file(READ "${golden_json}" golden)
if(NOT active STREQUAL repeat)
  message(FATAL_ERROR "same seed, different stats: DRAM fault injection is not deterministic")
endif()
if(NOT active STREQUAL golden)
  message(FATAL_ERROR "active-set and exhaustive schedulers diverge under DRAM faults")
endif()

# The run must have exercised the ECC path end to end: transient flips
# injected and corrected, and the patrol scrubber visiting work (at
# minimum the 32 seeded stuck-at cells).
if(NOT active MATCHES "\"injected\": [1-9]")
  message(FATAL_ERROR "no transient faults injected; rate too low?\n${active}")
endif()
if(NOT active MATCHES "\"corrected\": [1-9]")
  message(FATAL_ERROR "no single-bit corrections recorded:\n${active}")
endif()
if(NOT active MATCHES "\"scrub_stuck\": [1-9]")
  message(FATAL_ERROR "patrol scrubber never visited the stuck-at cells:\n${active}")
endif()
