# cli_stats_golden.cmake — tracing-off stats stay byte-identical.
#
# Replays the committed golden workload twice:
#   1. plain                -> the stats JSON must equal the committed
#                              pre-journey golden byte for byte (the
#                              journey subsystem is pay-for-what-you-use:
#                              disabled tracing may not perturb a single
#                              registered statistic);
#   2. --stage-stats        -> the host.stage.* histograms appear in the
#                              JSON and the CLI prints the attribution
#                              report with its percentile line.
# Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DTRACE=<journey_off.trace>
#         -DGOLDEN=<journey_off_stats.json> -DOUT_DIR=<dir>
#         -P cli_stats_golden.cmake
if(NOT DEFINED CLI OR NOT DEFINED TRACE OR NOT DEFINED GOLDEN
   OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DTRACE=<trace> -DGOLDEN=<json> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

function(run_replay json_path out_var)
  execute_process(
    COMMAND "${CLI}" replay "${TRACE}" ${ARGN}
            --stats-json "${json_path}"
    OUTPUT_VARIABLE run_stdout
    ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
  endif()
  if(NOT EXISTS "${json_path}")
    message(FATAL_ERROR "--stats-json wrote no file at ${json_path}")
  endif()
  set(${out_var} "${run_stdout}" PARENT_SCOPE)
endfunction()

set(plain_json "${OUT_DIR}/cli_journey_off_stats.json")
run_replay("${plain_json}" plain_stdout)

file(READ "${plain_json}" plain)
file(READ "${GOLDEN}" golden)
if(NOT plain STREQUAL golden)
  message(FATAL_ERROR "tracing-off stats diverged from the committed golden: the journey subsystem is no longer free when disabled")
endif()
if(plain MATCHES "link_ingress")
  message(FATAL_ERROR "host.stage.* registered without --stage-stats:\n${plain}")
endif()

set(stage_json "${OUT_DIR}/cli_journey_stage_stats.json")
run_replay("${stage_json}" stage_stdout "--stage-stats")

file(READ "${stage_json}" staged)
foreach(stage link_ingress vault_queue bank_service rsp_queue rsp_path)
  if(NOT staged MATCHES "\"${stage}\"")
    message(FATAL_ERROR "--stage-stats JSON lacks host.stage.${stage}:\n${staged}")
  endif()
endforeach()
if(NOT stage_stdout MATCHES "stage attribution \\(1[0-9] retired packets\\):")
  message(FATAL_ERROR "--stage-stats printed no attribution report:\n${stage_stdout}")
endif()
if(NOT stage_stdout MATCHES "end-to-end latency: p50=[0-9]+ p95=[0-9]+ p99=[0-9]+")
  message(FATAL_ERROR "--stage-stats printed no percentile line:\n${stage_stdout}")
endif()
