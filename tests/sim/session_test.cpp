// session_test.cpp — batched asynchronous session API.
//
// Lifecycle of BatchTickets (creation, polling, retirement, errors), the
// deterministic admission queue, completion callbacks, posted commands,
// and coexistence with raw link traffic. The byte-identity of batched
// vs packet-at-a-time driving lives in golden_equivalence_test.cpp.
#include "src/sim/session.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"

namespace hmcsim::sim {
namespace {

constexpr std::array<std::uint64_t, 8> kWords{1, 2, 3, 4, 5, 6, 7, 8};

spec::RqstParams read64(std::uint64_t addr, std::uint16_t tag) {
  spec::RqstParams p;
  p.rqst = spec::Rqst::RD64;
  p.addr = addr;
  p.tag = tag;
  return p;
}

spec::RqstParams write64(std::uint64_t addr, std::uint16_t tag) {
  spec::RqstParams p;
  p.rqst = spec::Rqst::WR64;
  p.addr = addr;
  p.tag = tag;
  p.payload = kWords;
  return p;
}

spec::RqstParams posted_write16(std::uint64_t addr, std::uint16_t tag) {
  spec::RqstParams p;
  p.rqst = spec::Rqst::P_WR16;
  p.addr = addr;
  p.tag = tag;
  p.payload = std::span<const std::uint64_t>(kWords.data(), 2);
  return p;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Simulator::create(Config::hmc_4link_4gb(), sim_).ok());
    session_ = std::make_unique<Session>(*sim_);
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, EmptyBatchIsRejected) {
  BatchTicket ticket = 77;
  const Status s = session_->send_batch({}, ticket);
  EXPECT_EQ(s.code(), StatusCode::InvalidArg);
  EXPECT_EQ(ticket, kInvalidTicket);
  EXPECT_EQ(session_->open_batches(), 0U);
}

TEST_F(SessionTest, OversizedBatchIsRejected) {
  std::vector<spec::RqstParams> reqs(kMaxBatchRequests + 1,
                                     read64(0x1000, 1));
  BatchTicket ticket = kInvalidTicket;
  EXPECT_EQ(session_->send_batch(reqs, ticket).code(),
            StatusCode::InvalidArg);
  EXPECT_EQ(session_->open_batches(), 0U);
}

TEST_F(SessionTest, BadLinkIsRejected) {
  const std::array reqs{read64(0x1000, 1)};
  BatchTicket ticket = kInvalidTicket;
  EXPECT_EQ(session_->send_batch(reqs, ticket, 99).code(),
            StatusCode::InvalidArg);
}

TEST_F(SessionTest, InvalidRequestRejectsWholeBatchAtomically) {
  // Second request is malformed (CMC code with no registration): nothing
  // of the batch may be admitted.
  std::array reqs{read64(0x1000, 1), read64(0x2000, 2)};
  reqs[1].rqst = spec::Rqst::CMC04;
  BatchTicket ticket = kInvalidTicket;
  EXPECT_FALSE(session_->send_batch(reqs, ticket).ok());
  EXPECT_EQ(ticket, kInvalidTicket);
  EXPECT_EQ(session_->open_batches(), 0U);
  session_->advance(100);
  EXPECT_EQ(session_->responses_matched(), 0U);
}

TEST_F(SessionTest, UnknownTicketIsNotFound) {
  std::array<Response, 4> out;
  std::size_t filled = 9;
  EXPECT_EQ(session_->poll_batch(123, out, filled).code(),
            StatusCode::NotFound);
  EXPECT_EQ(filled, 0U);
  BatchProgress prog;
  EXPECT_EQ(session_->batch_progress(123, prog).code(),
            StatusCode::NotFound);
  EXPECT_FALSE(session_->batch_done(123));
  EXPECT_EQ(session_->wait_batch(123).code(), StatusCode::NotFound);
}

TEST_F(SessionTest, PollBeforeClockReportsStallNotLoss) {
  const std::array reqs{read64(0x1000, 1), read64(0x2000, 2)};
  BatchTicket ticket = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(reqs, ticket, 0).ok());
  ASSERT_NE(ticket, kInvalidTicket);

  std::array<Response, 4> out;
  std::size_t filled = 0;
  // No cycle has elapsed: the batch is admitted but nothing retired.
  EXPECT_EQ(session_->poll_batch(ticket, out, filled).code(),
            StatusCode::Stall);
  EXPECT_EQ(filled, 0U);
  BatchProgress prog;
  ASSERT_TRUE(session_->batch_progress(ticket, prog).ok());
  EXPECT_EQ(prog.total, 2U);
  EXPECT_EQ(prog.expected, 2U);
  EXPECT_EQ(prog.received, 0U);
}

TEST_F(SessionTest, BatchRoundTripAndTicketRetirement) {
  std::vector<spec::RqstParams> reqs;
  for (std::uint16_t i = 0; i < 16; ++i) {
    reqs.push_back(i % 2 == 0 ? write64(0x1000u + 0x40u * i, i)
                              : read64(0x1000u + 0x40u * i, i));
  }
  BatchTicket ticket = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(reqs, ticket).ok());
  ASSERT_TRUE(session_->wait_batch(ticket, 100000).ok());
  EXPECT_TRUE(session_->batch_done(ticket));

  // Harvest with a deliberately small buffer: nothing may be lost.
  std::array<Response, 3> out;
  std::size_t filled = 0;
  std::size_t harvested = 0;
  Status s = Status::Stall();
  int guard = 0;
  while (!s.ok() && guard++ < 100) {
    s = session_->poll_batch(ticket, out, filled);
    ASSERT_NE(s.code(), StatusCode::NotFound);
    harvested += filled;
  }
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(harvested, 16U);
  // Ok retired the ticket: every later query says NotFound/false.
  EXPECT_FALSE(session_->batch_done(ticket));
  EXPECT_EQ(session_->poll_batch(ticket, out, filled).code(),
            StatusCode::NotFound);
  EXPECT_EQ(session_->open_batches(), 0U);
}

TEST_F(SessionTest, InterleavedBatchesOnOneLinkMatchByFifoOrder) {
  // Two batches pipelined down the same link; responses must route to
  // their own tickets even though link+tag streams interleave.
  const std::array first{read64(0x1000, 1), read64(0x2000, 2)};
  const std::array second{read64(0x3000, 3), read64(0x4000, 4)};
  BatchTicket t1 = kInvalidTicket;
  BatchTicket t2 = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(first, t1, 0).ok());
  ASSERT_TRUE(session_->send_batch(second, t2, 0).ok());
  ASSERT_NE(t1, t2);
  EXPECT_EQ(session_->open_batches(), 2U);

  ASSERT_TRUE(session_->wait_batch(t1, 100000).ok());
  ASSERT_TRUE(session_->wait_batch(t2, 100000).ok());

  std::array<Response, 8> out;
  std::size_t filled = 0;
  ASSERT_TRUE(session_->poll_batch(t1, out, filled).ok());
  ASSERT_EQ(filled, 2U);
  EXPECT_EQ(out[0].pkt.tag(), 1U);
  EXPECT_EQ(out[1].pkt.tag(), 2U);
  ASSERT_TRUE(session_->poll_batch(t2, out, filled).ok());
  ASSERT_EQ(filled, 2U);
  EXPECT_EQ(out[0].pkt.tag(), 3U);
  EXPECT_EQ(out[1].pkt.tag(), 4U);
}

TEST_F(SessionTest, CompletionCallbackStreamsAndAutoRetires) {
  std::vector<std::pair<BatchTicket, std::uint16_t>> seen;
  session_->set_on_complete(
      [&seen](BatchTicket t, const Response& rsp) {
        seen.emplace_back(t, rsp.pkt.tag());
      });
  const std::array reqs{read64(0x1000, 5), read64(0x2000, 6)};
  BatchTicket ticket = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(reqs, ticket, 1).ok());
  session_->advance(100000);
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], std::make_pair(ticket, std::uint16_t{5}));
  EXPECT_EQ(seen[1], std::make_pair(ticket, std::uint16_t{6}));
  // Callback mode retires finished batches automatically.
  EXPECT_EQ(session_->open_batches(), 0U);
  EXPECT_EQ(session_->responses_matched(), 2U);
}

TEST_F(SessionTest, PostedWritesCompleteAtAdmission) {
  const std::array reqs{posted_write16(0x1000, 1),
                        posted_write16(0x2000, 2)};
  BatchTicket ticket = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(reqs, ticket, 0).ok());
  // Admitted this cycle, owes no responses.
  BatchProgress prog;
  ASSERT_TRUE(session_->batch_progress(ticket, prog).ok());
  EXPECT_EQ(prog.admitted, 2U);
  EXPECT_EQ(prog.expected, 0U);
  EXPECT_TRUE(prog.done());
  std::array<Response, 1> out;
  std::size_t filled = 0;
  EXPECT_TRUE(session_->poll_batch(ticket, out, filled).ok());
  EXPECT_EQ(filled, 0U);
  session_->advance(100000);  // Let the writes land; nothing to match.
  EXPECT_EQ(session_->responses_matched(), 0U);
}

TEST_F(SessionTest, WaitBatchHonorsCycleBudget) {
  const std::array reqs{read64(0x1000, 1)};
  BatchTicket ticket = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(reqs, ticket, 0).ok());
  // One cycle is never enough for a full read round trip.
  EXPECT_EQ(session_->wait_batch(ticket, 1).code(), StatusCode::Stall);
  EXPECT_FALSE(session_->batch_done(ticket));
  EXPECT_TRUE(session_->wait_batch(ticket, 100000).ok());
  EXPECT_TRUE(session_->batch_done(ticket));
}

TEST_F(SessionTest, RawTrafficSurfacesThroughRecvUnmatched) {
  // A raw send outside any batch: the session parks its response per
  // link instead of mis-routing it into a batch.
  ASSERT_TRUE(sim_->send(read64(0x9000, 42), 2).ok());
  const std::array reqs{read64(0x1000, 7)};
  BatchTicket ticket = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(reqs, ticket, 0).ok());
  ASSERT_TRUE(session_->wait_batch(ticket, 100000).ok());
  session_->advance(1000);  // Ensure the raw response also retired.

  Response rsp;
  EXPECT_EQ(session_->recv_unmatched(0, rsp).code(), StatusCode::NoData);
  ASSERT_TRUE(session_->recv_unmatched(2, rsp).ok());
  EXPECT_EQ(rsp.pkt.tag(), 42U);
  EXPECT_EQ(session_->recv_unmatched(2, rsp).code(), StatusCode::NoData);
  EXPECT_EQ(session_->recv_unmatched(99, rsp).code(),
            StatusCode::InvalidArg);
}

TEST_F(SessionTest, RoundRobinShardingTouchesEveryLink) {
  std::vector<spec::RqstParams> reqs;
  for (std::uint16_t i = 0; i < 8; ++i) {
    reqs.push_back(read64(0x1000u + 0x40u * i, i));
  }
  BatchTicket ticket = kInvalidTicket;
  ASSERT_TRUE(session_->send_batch(reqs, ticket, kAnyLink).ok());
  ASSERT_TRUE(session_->wait_batch(ticket, 100000).ok());
  std::array<Response, 8> out;
  std::size_t filled = 0;
  ASSERT_TRUE(session_->poll_batch(ticket, out, filled).ok());
  EXPECT_EQ(filled, 8U);
  // 8 requests over 4 links: every link processed some traffic.
  for (std::uint32_t link = 0; link < 4; ++link) {
    EXPECT_GT(sim_->metrics().counter_value("cube0.link" +
                                            std::to_string(link) +
                                            ".rqst_packets"),
              0U)
        << "link " << link;
  }
}

}  // namespace
}  // namespace hmcsim::sim
