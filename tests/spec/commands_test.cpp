// commands_test.cpp — command database tests, including a row-by-row
// verification of Table I of the paper.
#include "src/spec/commands.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hmcsim::spec {
namespace {

TEST(Commands, ExactlySeventyCmcCodes) {
  // The paper: "The Gen2 architecture has sufficient command code space
  // ... leaving room for an additional 70 unused command codes."
  EXPECT_EQ(all_cmc_commands().size(), 70U);
  std::size_t counted = 0;
  for (unsigned code = 0; code < 128; ++code) {
    if (is_cmc(static_cast<Rqst>(code))) {
      ++counted;
    }
  }
  EXPECT_EQ(counted, 70U);
}

TEST(Commands, CmcCodesAreDisjointFromNamedCommands) {
  for (const CommandInfo& info : all_commands()) {
    if (info.kind == CommandKind::Cmc) {
      EXPECT_TRUE(is_cmc(info.rqst)) << info.name;
      EXPECT_EQ(info.name.substr(0, 3), "CMC") << unsigned(info.cmd);
    } else {
      EXPECT_FALSE(is_cmc(info.rqst)) << info.name;
    }
  }
}

TEST(Commands, EnumValuesAreWireCodes) {
  for (unsigned code = 0; code < 128; ++code) {
    const auto info = command_info(static_cast<std::uint8_t>(code));
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->cmd, code);
    EXPECT_EQ(static_cast<unsigned>(info->rqst), code);
  }
  EXPECT_FALSE(command_info(std::uint8_t{128}).has_value());
  EXPECT_FALSE(command_info(std::uint8_t{255}).has_value());
}

TEST(Commands, NamesAreUniqueAndParseable) {
  std::set<std::string_view> names;
  for (const CommandInfo& info : all_commands()) {
    ASSERT_FALSE(info.name.empty());
    EXPECT_NE(info.name, "?") << unsigned(info.cmd);
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate name " << info.name;
    const auto parsed = parse_rqst(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.rqst);
  }
  EXPECT_FALSE(parse_rqst("NOT_A_COMMAND").has_value());
  EXPECT_FALSE(parse_rqst("").has_value());
}

// ---- Table I: HMC-Sim 2.0 Gen2 additional command support ----------------

struct TableIRow {
  Rqst rqst;
  std::string_view name;
  unsigned rqst_flits;
  unsigned rsp_flits;
};

class TableITest : public ::testing::TestWithParam<TableIRow> {};

TEST_P(TableITest, FlitCountsMatchPaper) {
  const TableIRow& row = GetParam();
  const CommandInfo& info = command_info(row.rqst);
  EXPECT_EQ(info.name, row.name);
  EXPECT_EQ(info.rqst_flits, row.rqst_flits) << row.name;
  EXPECT_EQ(info.rsp_flits, row.rsp_flits) << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableITest,
    ::testing::Values(
        // Read/write/posted-write 256-byte additions.
        TableIRow{Rqst::RD256, "RD256", 1, 17},
        TableIRow{Rqst::WR256, "WR256", 17, 1},
        TableIRow{Rqst::P_WR256, "P_WR256", 17, 0},
        // Arithmetic atomics.
        TableIRow{Rqst::TWOADD8, "2ADD8", 2, 1},
        TableIRow{Rqst::ADD16, "ADD16", 2, 1},
        TableIRow{Rqst::P_2ADD8, "P_2ADD8", 2, 0},
        TableIRow{Rqst::P_ADD16, "P_ADD16", 2, 0},
        TableIRow{Rqst::TWOADDS8R, "2ADDS8R", 2, 2},
        TableIRow{Rqst::ADDS16R, "ADDS16R", 2, 2},
        TableIRow{Rqst::INC8, "INC8", 1, 1},
        TableIRow{Rqst::P_INC8, "P_INC8", 1, 0},
        // Boolean atomics.
        TableIRow{Rqst::XOR16, "XOR16", 2, 2},
        TableIRow{Rqst::OR16, "OR16", 2, 2},
        TableIRow{Rqst::NOR16, "NOR16", 2, 2},
        TableIRow{Rqst::AND16, "AND16", 2, 2},
        TableIRow{Rqst::NAND16, "NAND16", 2, 2},
        // Comparison atomics.
        TableIRow{Rqst::CASGT8, "CASGT8", 2, 2},
        TableIRow{Rqst::CASGT16, "CASGT16", 2, 2},
        TableIRow{Rqst::CASLT8, "CASLT8", 2, 2},
        TableIRow{Rqst::CASLT16, "CASLT16", 2, 2},
        TableIRow{Rqst::CASEQ8, "CASEQ8", 2, 2},
        TableIRow{Rqst::CASZERO16, "CASZERO16", 2, 2},
        TableIRow{Rqst::EQ8, "EQ8", 2, 1},
        TableIRow{Rqst::EQ16, "EQ16", 2, 1},
        // Bit writes and swap.
        TableIRow{Rqst::BWR, "BWR", 2, 1},
        TableIRow{Rqst::P_BWR, "P_BWR", 2, 0},
        TableIRow{Rqst::BWR8R, "BWR8R", 2, 2},
        TableIRow{Rqst::SWAP16, "SWAP16", 2, 2}),
    [](const auto& info) { return std::string(info.param.name); });

// ---- Gen1 read/write packet lengths (carried forward) ---------------------

struct RwRow {
  Rqst rqst;
  unsigned data_bytes;
};

class ReadLengthTest : public ::testing::TestWithParam<RwRow> {};

TEST_P(ReadLengthTest, ResponseCarriesHeaderPlusData) {
  const CommandInfo& info = command_info(GetParam().rqst);
  EXPECT_EQ(info.rqst_flits, 1U);
  EXPECT_EQ(info.rsp_flits, 1 + GetParam().data_bytes / 16);
  EXPECT_EQ(info.rsp, ResponseType::RD_RS);
  EXPECT_EQ(info.kind, CommandKind::Read);
}

INSTANTIATE_TEST_SUITE_P(
    AllReads, ReadLengthTest,
    ::testing::Values(RwRow{Rqst::RD16, 16}, RwRow{Rqst::RD32, 32},
                      RwRow{Rqst::RD48, 48}, RwRow{Rqst::RD64, 64},
                      RwRow{Rqst::RD80, 80}, RwRow{Rqst::RD96, 96},
                      RwRow{Rqst::RD112, 112}, RwRow{Rqst::RD128, 128},
                      RwRow{Rqst::RD256, 256}),
    [](const auto& info) {
      return std::string(command_info(info.param.rqst).name);
    });

class WriteLengthTest : public ::testing::TestWithParam<RwRow> {};

TEST_P(WriteLengthTest, RequestCarriesHeaderPlusData) {
  const CommandInfo& info = command_info(GetParam().rqst);
  EXPECT_EQ(info.rqst_flits, 1 + GetParam().data_bytes / 16);
  EXPECT_EQ(info.data_bytes, GetParam().data_bytes);
  if (info.kind == CommandKind::Write) {
    EXPECT_EQ(info.rsp_flits, 1U);
    EXPECT_EQ(info.rsp, ResponseType::WR_RS);
  } else {
    EXPECT_EQ(info.kind, CommandKind::PostedWrite);
    EXPECT_EQ(info.rsp_flits, 0U);
    EXPECT_EQ(info.rsp, ResponseType::None);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWrites, WriteLengthTest,
    ::testing::Values(RwRow{Rqst::WR16, 16}, RwRow{Rqst::WR32, 32},
                      RwRow{Rqst::WR48, 48}, RwRow{Rqst::WR64, 64},
                      RwRow{Rqst::WR80, 80}, RwRow{Rqst::WR96, 96},
                      RwRow{Rqst::WR112, 112}, RwRow{Rqst::WR128, 128},
                      RwRow{Rqst::WR256, 256}, RwRow{Rqst::P_WR16, 16},
                      RwRow{Rqst::P_WR32, 32}, RwRow{Rqst::P_WR48, 48},
                      RwRow{Rqst::P_WR64, 64}, RwRow{Rqst::P_WR80, 80},
                      RwRow{Rqst::P_WR96, 96}, RwRow{Rqst::P_WR112, 112},
                      RwRow{Rqst::P_WR128, 128}, RwRow{Rqst::P_WR256, 256}),
    [](const auto& info) {
      return std::string(command_info(info.param.rqst).name);
    });

TEST(Commands, FlowCommandsAreLinkLayer) {
  for (const Rqst rqst :
       {Rqst::FLOW_NULL, Rqst::PRET, Rqst::TRET, Rqst::IRTRY}) {
    EXPECT_TRUE(is_flow(rqst));
    EXPECT_EQ(command_info(rqst).kind, CommandKind::Flow);
    EXPECT_EQ(command_info(rqst).rsp_flits, 0U);
  }
  EXPECT_FALSE(is_flow(Rqst::WR16));
  EXPECT_FALSE(is_flow(Rqst::CMC04));
}

TEST(Commands, PostedCommandsHaveNoResponse) {
  for (const CommandInfo& info : all_commands()) {
    const bool posted = info.kind == CommandKind::PostedWrite ||
                        info.kind == CommandKind::PostedAtomic;
    if (posted) {
      EXPECT_EQ(info.rsp_flits, 0U) << info.name;
      EXPECT_EQ(info.rsp, ResponseType::None) << info.name;
    }
  }
}

TEST(Commands, PacketLengthsWithinSpecBounds) {
  for (const CommandInfo& info : all_commands()) {
    EXPECT_GE(info.rqst_flits, 1U) << info.name;
    EXPECT_LE(info.rqst_flits, 17U) << info.name;
    EXPECT_LE(info.rsp_flits, 17U) << info.name;
  }
}

TEST(Commands, CmcForCode) {
  EXPECT_EQ(cmc_for_code(125), Rqst::CMC125);
  EXPECT_EQ(cmc_for_code(4), Rqst::CMC04);
  EXPECT_FALSE(cmc_for_code(8).has_value());    // WR16
  EXPECT_FALSE(cmc_for_code(119).has_value());  // RD256
  EXPECT_FALSE(cmc_for_code(128).has_value());
}

TEST(Commands, MutexTrioLivesOnPaperCodes) {
  // Table V assigns the mutex operations to codes 125, 126 and 127.
  EXPECT_TRUE(is_cmc(Rqst::CMC125));
  EXPECT_TRUE(is_cmc(Rqst::CMC126));
  EXPECT_TRUE(is_cmc(Rqst::CMC127));
  EXPECT_EQ(to_string(Rqst::CMC125), "CMC125");
  EXPECT_EQ(to_string(Rqst::CMC126), "CMC126");
  EXPECT_EQ(to_string(Rqst::CMC127), "CMC127");
}

TEST(Commands, ResponseTypeNames) {
  EXPECT_EQ(to_string(ResponseType::RD_RS), "RD_RS");
  EXPECT_EQ(to_string(ResponseType::WR_RS), "WR_RS");
  EXPECT_EQ(to_string(ResponseType::MD_RD_RS), "MD_RD_RS");
  EXPECT_EQ(to_string(ResponseType::MD_WR_RS), "MD_WR_RS");
  EXPECT_EQ(to_string(ResponseType::RSP_ERROR), "RSP_ERROR");
  EXPECT_EQ(to_string(ResponseType::RSP_CMC), "RSP_CMC");
  EXPECT_EQ(to_string(ResponseType::None), "NONE");
}

TEST(Commands, CommandKindNames) {
  EXPECT_EQ(to_string(CommandKind::Flow), "FLOW");
  EXPECT_EQ(to_string(CommandKind::Read), "READ");
  EXPECT_EQ(to_string(CommandKind::Write), "WRITE");
  EXPECT_EQ(to_string(CommandKind::PostedWrite), "POSTED_WRITE");
  EXPECT_EQ(to_string(CommandKind::ModeRead), "MODE_READ");
  EXPECT_EQ(to_string(CommandKind::ModeWrite), "MODE_WRITE");
  EXPECT_EQ(to_string(CommandKind::Atomic), "ATOMIC");
  EXPECT_EQ(to_string(CommandKind::PostedAtomic), "POSTED_ATOMIC");
  EXPECT_EQ(to_string(CommandKind::Cmc), "CMC");
}

TEST(Commands, CmcListIsSortedAscending) {
  const auto cmcs = all_cmc_commands();
  for (std::size_t i = 1; i < cmcs.size(); ++i) {
    EXPECT_LT(static_cast<unsigned>(cmcs[i - 1]),
              static_cast<unsigned>(cmcs[i]));
  }
}

}  // namespace
}  // namespace hmcsim::spec
