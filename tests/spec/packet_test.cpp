// packet_test.cpp — HMC 2.1 packet codec tests: field layout, build/parse
// round trips (including a randomized property sweep), CRC integrity.
#include "src/spec/packet.hpp"

#include <gtest/gtest.h>

#include <array>

#include "src/common/rng.hpp"

namespace hmcsim::spec {
namespace {

TEST(PacketFields, RequestHeaderLayout) {
  std::uint64_t head = 0;
  head = RqstHead::Cmd::set(head, 0x7F);
  head = RqstHead::Lng::set(head, 17);
  head = RqstHead::Tag::set(head, 0x7FF);
  head = RqstHead::Adrs::set(head, 0x3FFFFFFFFULL);
  head = RqstHead::Cub::set(head, 7);
  EXPECT_EQ(RqstHead::Cmd::get(head), 0x7FULL);
  EXPECT_EQ(RqstHead::Lng::get(head), 17ULL);
  EXPECT_EQ(RqstHead::Tag::get(head), 0x7FFULL);
  EXPECT_EQ(RqstHead::Adrs::get(head), 0x3FFFFFFFFULL);
  EXPECT_EQ(RqstHead::Cub::get(head), 7ULL);
}

TEST(PacketFields, RequestFieldsDoNotOverlap) {
  // Setting each field to its maximum with the others zero must be
  // recoverable independently.
  struct Probe {
    unsigned lsb;
    unsigned width;
  };
  const Probe fields[] = {{RqstHead::Cmd::kLsb, RqstHead::Cmd::kWidth},
                          {RqstHead::Lng::kLsb, RqstHead::Lng::kWidth},
                          {RqstHead::Tag::kLsb, RqstHead::Tag::kWidth},
                          {RqstHead::Adrs::kLsb, RqstHead::Adrs::kWidth},
                          {RqstHead::Cub::kLsb, RqstHead::Cub::kWidth}};
  for (std::size_t i = 0; i < std::size(fields); ++i) {
    for (std::size_t j = i + 1; j < std::size(fields); ++j) {
      const bool disjoint =
          fields[i].lsb + fields[i].width <= fields[j].lsb ||
          fields[j].lsb + fields[j].width <= fields[i].lsb;
      EXPECT_TRUE(disjoint) << "fields " << i << " and " << j << " overlap";
    }
  }
}

TEST(PacketFields, ResponseTailLayout) {
  std::uint64_t tail = 0;
  tail = RspTail::Errstat::set(tail, 0x55);
  tail = RspTail::Dinv::set(tail, 1);
  tail = RspTail::Crc::set(tail, 0xFFFFFFFF);
  EXPECT_EQ(RspTail::Errstat::get(tail), 0x55ULL);
  EXPECT_EQ(RspTail::Dinv::get(tail), 1ULL);
  EXPECT_EQ(RspTail::Crc::get(tail), 0xFFFFFFFFULL);
}

TEST(BuildRequest, BasicReadPacket) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::RD64;
  params.addr = 0x123456;
  params.tag = 42;
  params.cub = 3;
  ASSERT_TRUE(build_request(params, pkt).ok());
  EXPECT_EQ(pkt.rqst(), Rqst::RD64);
  EXPECT_EQ(pkt.flits(), 1U);
  EXPECT_EQ(pkt.tag(), 42);
  EXPECT_EQ(pkt.addr(), 0x123456ULL);
  EXPECT_EQ(pkt.cub(), 3);
  EXPECT_TRUE(verify_crc(pkt));
}

TEST(BuildRequest, WritePacketCarriesPayload) {
  const std::array<std::uint64_t, 2> payload{0xAABB, 0xCCDD};
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::WR16;
  params.addr = 0x40;
  params.payload = payload;
  ASSERT_TRUE(build_request(params, pkt).ok());
  EXPECT_EQ(pkt.flits(), 2U);
  ASSERT_EQ(pkt.payload().size(), 2U);
  EXPECT_EQ(pkt.payload()[0], 0xAABBULL);
  EXPECT_EQ(pkt.payload()[1], 0xCCDDULL);
}

TEST(BuildRequest, RejectsOutOfRangeFields) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::RD16;

  params.addr = 1ULL << 34;  // ADRS is 34 bits.
  EXPECT_EQ(build_request(params, pkt).code(), StatusCode::InvalidArg);
  params.addr = 0;

  params.tag = 0x800;  // TAG is 11 bits.
  EXPECT_EQ(build_request(params, pkt).code(), StatusCode::InvalidArg);
  params.tag = 0;

  params.cub = 8;  // CUB is 3 bits.
  EXPECT_EQ(build_request(params, pkt).code(), StatusCode::InvalidArg);
}

TEST(BuildRequest, RejectsOversizedPayload) {
  const std::array<std::uint64_t, 4> payload{1, 2, 3, 4};
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::WR16;  // 2 FLITs -> 2 payload words max.
  params.payload = payload;
  EXPECT_EQ(build_request(params, pkt).code(), StatusCode::InvalidArg);
}

TEST(BuildRequest, FlitsOverrideOnlyForCmc) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::RD16;
  params.flits_override = 3;
  EXPECT_EQ(build_request(params, pkt).code(), StatusCode::InvalidArg);

  params.rqst = Rqst::CMC125;
  ASSERT_TRUE(build_request(params, pkt).ok());
  EXPECT_EQ(pkt.flits(), 3U);
}

TEST(BuildResponse, BasicFields) {
  const std::array<std::uint64_t, 2> payload{7, 9};
  RspPacket pkt;
  RspParams params;
  params.rsp_cmd_code = static_cast<std::uint8_t>(ResponseType::RD_RS);
  params.flits = 2;
  params.tag = 99;
  params.cub = 2;
  params.slid = 5;
  params.atomic_flag = true;
  params.errstat = 3;
  params.payload = payload;
  ASSERT_TRUE(build_response(params, pkt).ok());
  EXPECT_EQ(pkt.cmd(), 0x38);
  EXPECT_EQ(pkt.flits(), 2U);
  EXPECT_EQ(pkt.tag(), 99);
  EXPECT_EQ(pkt.cub(), 2);
  EXPECT_EQ(pkt.slid(), 5);
  EXPECT_TRUE(pkt.atomic_flag());
  EXPECT_EQ(pkt.errstat(), 3);
  EXPECT_FALSE(pkt.data_invalid());
  ASSERT_EQ(pkt.payload().size(), 2U);
  EXPECT_EQ(pkt.payload()[0], 7ULL);
  EXPECT_TRUE(verify_crc(pkt));
}

TEST(ResealCrc, RestoresValidityAfterLinkLayerStamps) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::RD32;
  params.addr = 0x2000;
  params.tag = 17;
  ASSERT_TRUE(build_request(params, pkt).ok());
  ASSERT_TRUE(verify_crc(pkt));
  // The link layer mutates sealed packets (SLID, SEQ/FRP/RRP stamps);
  // every such mutation invalidates the CRC until resealed.
  pkt.set_slid(3);
  pkt.set_seq(5);
  pkt.set_frp(42);
  pkt.set_rrp(7);
  EXPECT_FALSE(verify_crc(pkt));
  reseal_crc(pkt);
  EXPECT_TRUE(verify_crc(pkt));
  EXPECT_EQ(pkt.slid(), 3);
  EXPECT_EQ(pkt.seq(), 5);
  EXPECT_EQ(pkt.frp(), 42);
  EXPECT_EQ(pkt.rrp(), 7);
}

TEST(ResealCrc, TailDeltaFastPathMatchesFullReseal) {
  // The link hot path reseals via the GF(2)-linear tail-delta shortcut;
  // it must agree with the full-packet recompute for every stamp combo.
  const std::array<std::uint64_t, 6> payload{11, 22, 33, 44, 55, 66};
  RqstParams params;
  params.rqst = Rqst::WR48;
  params.addr = 0xABCD40;
  params.tag = 311;
  params.payload = payload;
  for (std::uint8_t slid = 0; slid < 8; ++slid) {
    RqstPacket fast;
    ASSERT_TRUE(build_request(params, fast).ok());
    RqstPacket full = fast;
    const std::uint64_t sealed = fast.tail;
    fast.set_slid(slid);
    fast.set_seq(static_cast<std::uint8_t>(slid ^ 5));
    fast.set_frp(static_cast<std::uint16_t>(37 * slid + 1));
    fast.set_rrp(static_cast<std::uint16_t>(511 - slid));
    reseal_tail(fast, sealed);
    full.tail = fast.tail;  // Same stamps, then the slow recompute.
    reseal_crc(full);
    EXPECT_EQ(fast.tail, full.tail);
    EXPECT_TRUE(verify_crc(fast));
  }
}

TEST(ResealCrc, ResponseRetryStampsRoundTrip) {
  RspPacket pkt;
  RspParams params;
  params.rsp_cmd_code = static_cast<std::uint8_t>(ResponseType::RD_RS);
  params.flits = 1;
  params.tag = 4;
  ASSERT_TRUE(build_response(params, pkt).ok());
  ASSERT_TRUE(verify_crc(pkt));
  pkt.set_seq(2);
  pkt.set_frp(100);
  pkt.set_rrp(99);
  pkt.set_rtc(6);
  EXPECT_FALSE(verify_crc(pkt));
  reseal_crc(pkt);
  EXPECT_TRUE(verify_crc(pkt));
  EXPECT_EQ(pkt.seq(), 2);
  EXPECT_EQ(pkt.frp(), 100);
  EXPECT_EQ(pkt.rrp(), 99);
  EXPECT_EQ(pkt.rtc(), 6);
}

TEST(BuildResponse, RejectsBadLengths) {
  RspPacket pkt;
  RspParams params;
  params.flits = 0;
  EXPECT_EQ(build_response(params, pkt).code(), StatusCode::InvalidArg);
  params.flits = 18;
  EXPECT_EQ(build_response(params, pkt).code(), StatusCode::InvalidArg);
}

TEST(Serialize, RoundTripRequest) {
  const std::array<std::uint64_t, 2> payload{0x1111, 0x2222};
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::WR16;
  params.addr = 0x80;
  params.tag = 5;
  params.payload = payload;
  ASSERT_TRUE(build_request(params, pkt).ok());

  std::array<std::uint64_t, kMaxPacketWords> wire{};
  const std::size_t n = serialize(pkt, wire);
  ASSERT_EQ(n, 4U);  // 2 FLITs = 4 words.
  EXPECT_EQ(wire[0], pkt.head);
  EXPECT_EQ(wire[3], pkt.tail);

  RqstPacket parsed;
  ASSERT_TRUE(parse_request({wire.data(), n}, parsed).ok());
  EXPECT_EQ(parsed.head, pkt.head);
  EXPECT_EQ(parsed.tail, pkt.tail);
  EXPECT_EQ(parsed.payload()[0], 0x1111ULL);
  EXPECT_EQ(parsed.payload()[1], 0x2222ULL);
}

TEST(Serialize, ParseDetectsCorruption) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::RD32;
  params.addr = 0x1000;
  ASSERT_TRUE(build_request(params, pkt).ok());

  std::array<std::uint64_t, kMaxPacketWords> wire{};
  const std::size_t n = serialize(pkt, wire);
  ASSERT_EQ(n, 2U);

  // Flip one address bit: the CRC check must reject the stream.
  wire[0] ^= 1ULL << 30;
  RqstPacket parsed;
  EXPECT_EQ(parse_request({wire.data(), n}, parsed).code(),
            StatusCode::InvalidArg);
}

TEST(Serialize, ParseRejectsLengthMismatch) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::WR64;  // 5 FLITs.
  ASSERT_TRUE(build_request(params, pkt).ok());
  std::array<std::uint64_t, kMaxPacketWords> wire{};
  const std::size_t n = serialize(pkt, wire);
  ASSERT_EQ(n, 10U);
  RqstPacket parsed;
  EXPECT_FALSE(parse_request({wire.data(), n - 2}, parsed).ok());
  EXPECT_FALSE(parse_request({wire.data(), 1}, parsed).ok());
}

TEST(Serialize, BufferTooSmallReturnsZero) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::WR256;  // 17 FLITs = 34 words.
  ASSERT_TRUE(build_request(params, pkt).ok());
  std::array<std::uint64_t, 10> small{};
  EXPECT_EQ(serialize(pkt, small), 0U);
}

// Property: build -> serialize -> parse is the identity for every command
// and randomized field values.
TEST(PacketProperty, RandomizedRoundTripAllCommands) {
  Xoshiro256 rng(0xBEEF);
  std::array<std::uint64_t, 32> payload{};
  for (const CommandInfo& info : all_commands()) {
    if (info.kind == CommandKind::Flow) {
      continue;  // Flow packets are link-consumed, not vault-routed.
    }
    for (int iter = 0; iter < 8; ++iter) {
      RqstParams params;
      params.rqst = info.rqst;
      params.addr = rng() & ((1ULL << 34) - 1);
      params.tag = static_cast<std::uint16_t>(rng.below(kMaxTag + 1));
      params.cub = static_cast<std::uint8_t>(rng.below(8));
      std::uint32_t flits = info.rqst_flits;
      if (info.kind == CommandKind::Cmc) {
        flits = 1 + static_cast<std::uint32_t>(rng.below(17));
        params.flits_override = static_cast<std::uint8_t>(flits);
      }
      const std::size_t words = 2 * (flits - 1);
      for (std::size_t w = 0; w < words; ++w) {
        payload[w] = rng();
      }
      params.payload = {payload.data(), words};

      RqstPacket pkt;
      ASSERT_TRUE(build_request(params, pkt).ok()) << info.name;
      EXPECT_TRUE(verify_crc(pkt)) << info.name;

      std::array<std::uint64_t, kMaxPacketWords> wire{};
      const std::size_t n = serialize(pkt, wire);
      ASSERT_EQ(n, 2 * flits) << info.name;

      RqstPacket parsed;
      ASSERT_TRUE(parse_request({wire.data(), n}, parsed).ok()) << info.name;
      EXPECT_EQ(parsed.head, pkt.head);
      EXPECT_EQ(parsed.tail, pkt.tail);
      EXPECT_EQ(parsed.addr(), params.addr);
      EXPECT_EQ(parsed.tag(), params.tag);
      EXPECT_EQ(parsed.cub(), params.cub);
      for (std::size_t w = 0; w < words; ++w) {
        EXPECT_EQ(parsed.payload()[w], payload[w]);
      }
    }
  }
}

TEST(PacketProperty, RandomizedResponseRoundTrip) {
  Xoshiro256 rng(0xF00D);
  std::array<std::uint64_t, 32> payload{};
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint32_t flits = 1 + static_cast<std::uint32_t>(rng.below(17));
    const std::size_t words = 2 * (flits - 1);
    for (std::size_t w = 0; w < words; ++w) {
      payload[w] = rng();
    }
    RspParams params;
    params.rsp_cmd_code = static_cast<std::uint8_t>(rng.below(128));
    params.flits = flits;
    params.tag = static_cast<std::uint16_t>(rng.below(kMaxTag + 1));
    params.cub = static_cast<std::uint8_t>(rng.below(8));
    params.slid = static_cast<std::uint8_t>(rng.below(8));
    params.atomic_flag = rng.below(2) != 0;
    params.errstat = static_cast<std::uint8_t>(rng.below(128));
    params.payload = {payload.data(), words};

    RspPacket pkt;
    ASSERT_TRUE(build_response(params, pkt).ok());
    std::array<std::uint64_t, kMaxPacketWords> wire{};
    const std::size_t n = serialize(pkt, wire);
    ASSERT_EQ(n, 2 * flits);
    RspPacket parsed;
    ASSERT_TRUE(parse_response({wire.data(), n}, parsed).ok());
    EXPECT_EQ(parsed.tag(), params.tag);
    EXPECT_EQ(parsed.slid(), params.slid);
    EXPECT_EQ(parsed.atomic_flag(), params.atomic_flag);
    EXPECT_EQ(parsed.errstat(), params.errstat);
    for (std::size_t w = 0; w < words; ++w) {
      EXPECT_EQ(parsed.payload()[w], payload[w]);
    }
  }
}

TEST(PacketToString, ContainsKeyFields) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::INC8;
  params.addr = 0xABC;
  params.tag = 7;
  ASSERT_TRUE(build_request(params, pkt).ok());
  const std::string s = to_string(pkt);
  EXPECT_NE(s.find("INC8"), std::string::npos);
  EXPECT_NE(s.find("tag=7"), std::string::npos);
  EXPECT_NE(s.find("abc"), std::string::npos);
}

}  // namespace
}  // namespace hmcsim::spec
