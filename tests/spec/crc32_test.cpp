// crc32_test.cpp — packet CRC tests.
#include "src/spec/crc32.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace hmcsim::spec {
namespace {

TEST(Crc32, EmptyInputIsSeed) {
  EXPECT_EQ(crc32k({}), 0U);
  EXPECT_EQ(crc32k({}, 0xDEADBEEF), 0xDEADBEEFU);
}

TEST(Crc32, DeterministicAndSensitiveToEveryByte) {
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const std::uint32_t base = crc32k(data);
  EXPECT_EQ(crc32k(data), base);
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto corrupted = data;
    corrupted[i] ^= 0x01;
    EXPECT_NE(crc32k(corrupted), base) << "undetected flip at byte " << i;
  }
}

TEST(Crc32, SensitiveToSingleBitFlips) {
  std::vector<std::uint8_t> data(32, 0xAB);
  const std::uint32_t base = crc32k(data);
  for (unsigned bit = 0; bit < 8; ++bit) {
    auto corrupted = data;
    corrupted[17] ^= static_cast<std::uint8_t>(1U << bit);
    EXPECT_NE(crc32k(corrupted), base);
  }
}

TEST(Crc32, OrderMatters) {
  const std::array<std::uint8_t, 4> ab{1, 2, 3, 4};
  const std::array<std::uint8_t, 4> ba{4, 3, 2, 1};
  EXPECT_NE(crc32k(ab), crc32k(ba));
}

TEST(Crc32, WordVariantMatchesByteVariantLittleEndian) {
  const std::array<std::uint64_t, 3> words{0x0123456789ABCDEFULL,
                                           0xFEDCBA9876543210ULL,
                                           0x1122334455667788ULL};
  std::vector<std::uint8_t> bytes;
  for (const std::uint64_t w : words) {
    for (unsigned b = 0; b < 8; ++b) {
      bytes.push_back(static_cast<std::uint8_t>((w >> (8 * b)) & 0xFF));
    }
  }
  EXPECT_EQ(crc32k_words(words), crc32k(bytes));
}

TEST(Crc32, SeedChaining) {
  // CRC(a ++ b) == CRC(b, seed=CRC(a)) for this simple framing.
  const std::array<std::uint8_t, 5> a{1, 2, 3, 4, 5};
  const std::array<std::uint8_t, 3> b{6, 7, 8};
  std::vector<std::uint8_t> ab(a.begin(), a.end());
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(crc32k(ab), crc32k(b, crc32k(a)));
}

namespace {
/// Bit-at-a-time MSB-first reference CRC with the spec polynomial.
std::uint32_t reference_crc(std::span<const std::uint8_t> bytes,
                            std::uint32_t seed = 0) {
  std::uint32_t crc = seed;
  for (const std::uint8_t byte : bytes) {
    crc ^= static_cast<std::uint32_t>(byte) << 24;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80000000U) != 0 ? (crc << 1) ^ kCrcPolynomial
                                     : (crc << 1);
    }
  }
  return crc;
}
}  // namespace

TEST(Crc32, UsesKoopmanPolynomial) {
  EXPECT_EQ(kCrcPolynomial, 0x741B8CD7U);
}

TEST(Crc32, TableMatchesBitwiseReference) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 257; ++i) {
    data.push_back(static_cast<std::uint8_t>(i * 31 + 7));
    EXPECT_EQ(crc32k(data), reference_crc(data)) << "length " << data.size();
  }
}

}  // namespace
}  // namespace hmcsim::spec
