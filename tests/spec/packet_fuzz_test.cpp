// packet_fuzz_test.cpp — codec robustness under hostile inputs.
//
// The parser consumes wire words that, in a real deployment, arrive from
// other agents: it must never crash, never accept corrupted data, and
// always fail cleanly on malformed streams.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/common/rng.hpp"
#include "src/spec/packet.hpp"

namespace hmcsim::spec {
namespace {

TEST(PacketFuzz, RandomWordStreamsNeverCrashAndRarelyPass) {
  Xoshiro256 rng(0xFADE);
  int accepted = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    const std::size_t len = 1 + rng.below(40);
    std::vector<std::uint64_t> words(len);
    for (auto& w : words) {
      w = rng();
    }
    RqstPacket rqst;
    if (parse_request(words, rqst).ok()) {
      ++accepted;  // Only possible if LNG matches AND the CRC collides.
    }
    RspPacket rsp;
    if (parse_response(words, rsp).ok()) {
      ++accepted;
    }
  }
  // A 32-bit CRC collision over 10k tries is ~2e-6 likely; zero expected.
  EXPECT_EQ(accepted, 0);
}

TEST(PacketFuzz, EveryTailBitFlipIsDetected) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::WR32;
  params.addr = 0xABC0;
  params.tag = 99;
  const std::array<std::uint64_t, 4> payload{1, 2, 3, 4};
  params.payload = payload;
  ASSERT_TRUE(build_request(params, pkt).ok());
  std::array<std::uint64_t, kMaxPacketWords> wire{};
  const std::size_t n = serialize(pkt, wire);

  int rejected = 0;
  int total = 0;
  for (std::size_t word = 0; word < n; ++word) {
    for (unsigned bit = 0; bit < 64; ++bit) {
      auto corrupted = wire;
      corrupted[word] ^= 1ULL << bit;
      RqstPacket parsed;
      const Status s = parse_request({corrupted.data(), n}, parsed);
      ++total;
      if (!s.ok()) {
        ++rejected;
      }
    }
  }
  // Every single-bit flip must be caught (LNG mismatch or CRC failure).
  EXPECT_EQ(rejected, total);
}

TEST(PacketFuzz, TruncatedAndPaddedStreamsRejected) {
  RqstPacket pkt;
  RqstParams params;
  params.rqst = Rqst::WR64;  // 5 FLITs = 10 words.
  ASSERT_TRUE(build_request(params, pkt).ok());
  std::array<std::uint64_t, kMaxPacketWords> wire{};
  const std::size_t n = serialize(pkt, wire);
  ASSERT_EQ(n, 10U);
  RqstPacket parsed;
  for (std::size_t len = 0; len < n; ++len) {
    EXPECT_FALSE(parse_request({wire.data(), len}, parsed).ok()) << len;
  }
  EXPECT_FALSE(parse_request({wire.data(), n + 2}, parsed).ok());
}

TEST(PacketFuzz, ZeroAndAllOnesStreams) {
  RqstPacket rqst;
  RspPacket rsp;
  for (const std::uint64_t fill : {0ULL, ~0ULL}) {
    for (const std::size_t len : {2U, 4U, 10U, 34U}) {
      std::vector<std::uint64_t> words(len, fill);
      EXPECT_FALSE(parse_request(words, rqst).ok());
      EXPECT_FALSE(parse_response(words, rsp).ok());
    }
  }
}

TEST(PacketFuzz, MutatedBuiltPacketsRoundTripOnlyWhenUntouched) {
  Xoshiro256 rng(0x5EED5);
  for (int iter = 0; iter < 500; ++iter) {
    RqstParams params;
    params.rqst = Rqst::RD64;
    params.addr = rng() & ((1ULL << 34) - 1);
    params.tag = static_cast<std::uint16_t>(rng.below(kMaxTag + 1));
    RqstPacket pkt;
    ASSERT_TRUE(build_request(params, pkt).ok());
    std::array<std::uint64_t, kMaxPacketWords> wire{};
    const std::size_t n = serialize(pkt, wire);

    RqstPacket parsed;
    ASSERT_TRUE(parse_request({wire.data(), n}, parsed).ok());

    // One random mutation that keeps LNG plausible must be rejected.
    auto corrupted = wire;
    const std::size_t word = rng.below(n);
    std::uint64_t flip = 1ULL << rng.below(64);
    if (word == 0) {
      // Avoid toggling LNG into a mismatch trivially — flip the address
      // bits instead, the harder case for detection.
      flip = 1ULL << (24 + rng.below(34));
    }
    corrupted[word] ^= flip;
    EXPECT_FALSE(parse_request({corrupted.data(), n}, parsed).ok());
  }
}

}  // namespace
}  // namespace hmcsim::spec
