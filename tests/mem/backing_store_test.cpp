// backing_store_test.cpp — sparse memory model tests.
#include "src/mem/backing_store.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace hmcsim::mem {
namespace {

constexpr std::uint64_t kMiB = 1024 * 1024;

TEST(BackingStore, UntouchedMemoryReadsZero) {
  BackingStore store(16 * kMiB);
  std::array<std::uint8_t, 64> buf;
  buf.fill(0xFF);
  ASSERT_TRUE(store.read(0x1234, buf).ok());
  for (const auto b : buf) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(store.resident_pages(), 0U);  // Reads never materialise pages.
}

TEST(BackingStore, WriteReadRoundTrip) {
  BackingStore store(16 * kMiB);
  std::array<std::uint8_t, 32> in;
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i + 1);
  }
  ASSERT_TRUE(store.write(0x4000, in).ok());
  std::array<std::uint8_t, 32> out{};
  ASSERT_TRUE(store.read(0x4000, out).ok());
  EXPECT_EQ(in, out);
}

TEST(BackingStore, CrossPageBoundary) {
  BackingStore store(16 * kMiB);
  const std::uint64_t addr = BackingStore::kPageBytes - 8;
  std::array<std::uint8_t, 16> in;
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  ASSERT_TRUE(store.write(addr, in).ok());
  EXPECT_EQ(store.resident_pages(), 2U);
  std::array<std::uint8_t, 16> out{};
  ASSERT_TRUE(store.read(addr, out).ok());
  EXPECT_EQ(in, out);
}

TEST(BackingStore, PartialPageReadMixesZeroAndData) {
  BackingStore store(16 * kMiB);
  const std::array<std::uint8_t, 4> in{1, 2, 3, 4};
  ASSERT_TRUE(store.write(100, in).ok());
  std::array<std::uint8_t, 8> out{};
  ASSERT_TRUE(store.read(98, out).ok());
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[5], 4);
  EXPECT_EQ(out[6], 0);
}

TEST(BackingStore, RejectsOutOfRange) {
  BackingStore store(kMiB);
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(store.read(kMiB, buf).ok());
  EXPECT_FALSE(store.write(kMiB, buf).ok());
  EXPECT_FALSE(store.read(kMiB - 8, buf).ok());  // Tail crosses the end.
  EXPECT_TRUE(store.read(kMiB - 16, buf).ok());  // Exactly at the end.
}

TEST(BackingStore, U64RoundTripLittleEndian) {
  BackingStore store(kMiB);
  ASSERT_TRUE(store.write_u64(0x100, 0x0102030405060708ULL).ok());
  std::uint64_t v = 0;
  ASSERT_TRUE(store.read_u64(0x100, v).ok());
  EXPECT_EQ(v, 0x0102030405060708ULL);
  // Byte order: LSB first.
  std::array<std::uint8_t, 8> bytes{};
  ASSERT_TRUE(store.read(0x100, bytes).ok());
  EXPECT_EQ(bytes[0], 0x08);
  EXPECT_EQ(bytes[7], 0x01);
}

TEST(BackingStore, U128RoundTrip) {
  BackingStore store(kMiB);
  const std::array<std::uint64_t, 2> in{0xDEAD, 0xBEEF};
  ASSERT_TRUE(store.write_u128(0x200, in).ok());
  std::array<std::uint64_t, 2> out{};
  ASSERT_TRUE(store.read_u128(0x200, out).ok());
  EXPECT_EQ(out, in);
}

TEST(BackingStore, UnalignedU64Access) {
  BackingStore store(kMiB);
  ASSERT_TRUE(store.write_u64(3, 0xCAFEBABEDEADBEEFULL).ok());
  std::uint64_t v = 0;
  ASSERT_TRUE(store.read_u64(3, v).ok());
  EXPECT_EQ(v, 0xCAFEBABEDEADBEEFULL);
}

TEST(BackingStore, SparseDoesNotMaterialiseUntouchedPages) {
  BackingStore store(8ULL * 1024 * kMiB);  // 8 GiB logical.
  ASSERT_TRUE(store.write_u64(7ULL * 1024 * kMiB, 1).ok());
  ASSERT_TRUE(store.write_u64(0, 2).ok());
  EXPECT_EQ(store.resident_pages(), 2U);
  std::uint64_t v = 0;
  ASSERT_TRUE(store.read_u64(7ULL * 1024 * kMiB, v).ok());
  EXPECT_EQ(v, 1ULL);
}

TEST(BackingStore, ClearResetsToZero) {
  BackingStore store(kMiB);
  ASSERT_TRUE(store.write_u64(0x10, 0x1234).ok());
  store.clear();
  EXPECT_EQ(store.resident_pages(), 0U);
  std::uint64_t v = 99;
  ASSERT_TRUE(store.read_u64(0x10, v).ok());
  EXPECT_EQ(v, 0ULL);
}

TEST(BackingStore, OverwriteInPlace) {
  BackingStore store(kMiB);
  ASSERT_TRUE(store.write_u64(0x40, 1).ok());
  ASSERT_TRUE(store.write_u64(0x40, 2).ok());
  std::uint64_t v = 0;
  ASSERT_TRUE(store.read_u64(0x40, v).ok());
  EXPECT_EQ(v, 2ULL);
  EXPECT_EQ(store.resident_pages(), 1U);
}

TEST(BackingStore, LargeBulkTransfer) {
  BackingStore store(64 * kMiB);
  std::vector<std::uint8_t> in(3 * BackingStore::kPageBytes + 123);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  ASSERT_TRUE(store.write(kMiB - 57, in).ok());
  std::vector<std::uint8_t> out(in.size());
  ASSERT_TRUE(store.read(kMiB - 57, out).ok());
  EXPECT_EQ(in, out);
}

TEST(BackingStore, CapacityReported) {
  BackingStore store(4 * kMiB);
  EXPECT_EQ(store.capacity(), 4 * kMiB);
}

TEST(BackingStore, U64AcrossPageBoundary) {
  BackingStore store(kMiB);
  const std::uint64_t addr = BackingStore::kPageBytes - 3;
  ASSERT_TRUE(store.write_u64(addr, 0x1122334455667788ULL).ok());
  EXPECT_EQ(store.resident_pages(), 2U);
  std::uint64_t v = 0;
  ASSERT_TRUE(store.read_u64(addr, v).ok());
  EXPECT_EQ(v, 0x1122334455667788ULL);
}

TEST(BackingStore, U64OutOfRangeMessages) {
  BackingStore store(kMiB);
  std::uint64_t v = 0;
  const Status rd = store.read_u64(kMiB - 4, v);
  ASSERT_FALSE(rd.ok());
  EXPECT_NE(rd.message().find("read beyond device capacity"),
            std::string::npos);
  const Status wr = store.write_u64(kMiB, 1);
  ASSERT_FALSE(wr.ok());
  EXPECT_NE(wr.message().find("write beyond device capacity"),
            std::string::npos);
}

TEST(BackingStore, MruCacheSeesWritesThroughOtherPaths) {
  // Interleave u64 accesses (MRU fast path) with bulk read/write on the
  // same and neighbouring pages: the cache must never serve stale data
  // and must not cache a read miss that a later write materialises.
  BackingStore store(kMiB);
  std::uint64_t v = 99;
  ASSERT_TRUE(store.read_u64(0x100, v).ok());  // Miss: page untouched.
  EXPECT_EQ(v, 0ULL);
  const std::array<std::uint8_t, 8> bytes{8, 7, 6, 5, 4, 3, 2, 1};
  ASSERT_TRUE(store.write(0x100, bytes).ok());  // Materialises the page.
  ASSERT_TRUE(store.read_u64(0x100, v).ok());
  EXPECT_EQ(v, 0x0102030405060708ULL);
  // Hop to another page and back: the MRU entry must follow.
  ASSERT_TRUE(store.write_u64(BackingStore::kPageBytes * 3, 0xAA).ok());
  ASSERT_TRUE(store.read_u64(0x100, v).ok());
  EXPECT_EQ(v, 0x0102030405060708ULL);
  ASSERT_TRUE(store.read_u64(BackingStore::kPageBytes * 3, v).ok());
  EXPECT_EQ(v, 0xAAULL);
}

TEST(BackingStore, ClearInvalidatesMruCache) {
  BackingStore store(kMiB);
  ASSERT_TRUE(store.write_u64(0x80, 0x5555).ok());
  std::uint64_t v = 0;
  ASSERT_TRUE(store.read_u64(0x80, v).ok());  // Caches the page.
  EXPECT_EQ(v, 0x5555ULL);
  store.clear();
  ASSERT_TRUE(store.read_u64(0x80, v).ok());
  EXPECT_EQ(v, 0ULL);  // Stale cache would return 0x5555.
  ASSERT_TRUE(store.write_u64(0x80, 0x7777).ok());
  ASSERT_TRUE(store.read_u64(0x80, v).ok());
  EXPECT_EQ(v, 0x7777ULL);
}

}  // namespace
}  // namespace hmcsim::mem
