// fault_test.cpp — FaultInjector unit tests: the deterministic draw
// schedule, SEC-DED error-mask accounting, write repair semantics, and
// the patrol scrubber's bounded, spin-free progress contract.
#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <memory>
#include <vector>

#include "src/mem/fault.hpp"
#include "src/metrics/stat_registry.hpp"
#include "src/sim/config.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/stats_report.hpp"

namespace hmcsim::mem {
namespace {

sim::Config fault_config(std::uint32_t ppm, std::uint64_t seed = 0xECC,
                         std::uint32_t scrub = 1024,
                         std::uint32_t stuck = 0) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.dram_fault_ppm = ppm;
  cfg.dram_fault_seed = seed;
  cfg.scrub_interval = scrub;
  cfg.stuck_faults = stuck;
  return cfg;
}

TEST(FaultInjector, DisabledWhenUnconfigured) {
  metrics::StatRegistry reg;
  FaultInjector f(fault_config(0, 1, 1024, 0), 0, reg, "cube0");
  EXPECT_FALSE(f.enabled());
  // The gated registration keeps the stats namespace clean when off.
  EXPECT_EQ(reg.find_counter("cube0.ecc.injected"), nullptr);
}

TEST(FaultInjector, DrawScheduleIsAPureFunctionOfTheKey) {
  // Two injectors with the same seed must produce identical error masks
  // for any (vault, addr, cycle) probe order — the draw carries no
  // stream state, so the schedule survives reordering (and therefore
  // sharding and set_threads changes).
  metrics::StatRegistry ra, rb;
  FaultInjector a(fault_config(400'000), 0, ra, "cube0");
  FaultInjector b(fault_config(400'000), 0, rb, "cube0");
  std::vector<std::uint64_t> seq_a, seq_b;
  for (std::uint64_t cycle = 1; cycle <= 64; ++cycle) {
    for (std::uint32_t vault = 0; vault < 4; ++vault) {
      const std::uint64_t addr = 8 * (cycle * 31 + vault);
      seq_a.push_back(a.read_error_bits(vault, addr, 0, cycle));
    }
  }
  // Probe b in the reverse order: same keys, any order.
  for (std::uint64_t cycle = 64; cycle >= 1; --cycle) {
    for (std::uint32_t vault = 4; vault-- > 0;) {
      const std::uint64_t addr = 8 * (cycle * 31 + vault);
      seq_b.push_back(b.read_error_bits(vault, addr, 0, cycle));
    }
  }
  // Compare as injected-bit accumulations per key: reverse b's sequence.
  std::vector<std::uint64_t> rev(seq_b.rbegin(), seq_b.rend());
  EXPECT_EQ(seq_a, rev);
  EXPECT_GT(ra.find_counter("cube0.ecc.injected")->value(), 0U);
  EXPECT_EQ(ra.find_counter("cube0.ecc.injected")->value(),
            rb.find_counter("cube0.ecc.injected")->value());
}

TEST(FaultInjector, DifferentSeedsDifferentSchedules) {
  metrics::StatRegistry ra, rb;
  FaultInjector a(fault_config(300'000, 7), 0, ra, "cube0");
  FaultInjector b(fault_config(300'000, 8), 0, rb, "cube0");
  bool differs = false;
  for (std::uint64_t cycle = 1; cycle <= 256 && !differs; ++cycle) {
    differs = a.read_error_bits(0, 8 * cycle, 0, cycle) !=
              b.read_error_bits(0, 8 * cycle, 0, cycle);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, RepeatReadSameCycleCannotCancelAFlip) {
  // ~100% injection: the same (word, cycle) key draws the same flip; the
  // OR-deposit means the second read sees the same non-zero mask instead
  // of XOR-cancelling it back to clean.
  metrics::StatRegistry reg;
  FaultInjector f(fault_config(1'000'000), 0, reg, "cube0");
  const std::uint64_t first = f.read_error_bits(3, 0x40, 0, 9);
  const std::uint64_t second = f.read_error_bits(3, 0x40, 0, 9);
  ASSERT_NE(first, 0U);
  EXPECT_EQ(first, second);
}

TEST(FaultInjector, SecDedMaskAccumulation) {
  metrics::StatRegistry reg;
  FaultInjector f(fault_config(0, 1, 1024, 1), 0, reg, "cube0");
  ASSERT_TRUE(f.enabled());
  f.inject_transient(0x100, 1ULL << 5);
  EXPECT_EQ(std::popcount(f.read_error_bits(0, 0x100, 0, 1)), 1);
  f.inject_transient(0x100, 1ULL << 17);
  EXPECT_EQ(std::popcount(f.read_error_bits(0, 0x100, 0, 2)), 2);
  // A functional write lands true data and clears the latent flips.
  f.note_write(0x100, 8);
  EXPECT_EQ(f.read_error_bits(0, 0x100, 0, 3), 0U);
}

TEST(FaultInjector, StuckCellsOnlyErrWhenStoredDisagrees) {
  metrics::StatRegistry reg;
  FaultInjector f(fault_config(0, 1, 1024, 1), 0, reg, "cube0");
  const std::uint64_t bit = 1ULL << 40;
  f.inject_stuck(0x200, bit, bit);  // stuck-at-1
  EXPECT_EQ(f.read_error_bits(0, 0x200, bit, 10), 0U);  // stored agrees
  EXPECT_EQ(f.read_error_bits(0, 0x200, 0, 11), bit);   // stored disagrees
}

TEST(FaultInjector, ScrubRepairsSingleBitAndParksMultiBit) {
  metrics::StatRegistry reg;
  FaultInjector f(fault_config(0, 1, /*scrub=*/16, /*stuck=*/1), 0, reg,
                  "cube0");
  // Seeded stuck cell lands somewhere in 4 GB; visit it on the first tick
  // along with two injected latent words.
  f.inject_transient(0x300, 1ULL << 2);                  // repairable
  f.inject_transient(0x308, (1ULL << 3) | (1ULL << 4));  // beyond SEC-DED
  const std::size_t before = f.pending_scrub_work();
  ASSERT_GE(before, 3U);  // 2 latent + >= 1 dirty stuck cell
  EXPECT_EQ(f.next_scrub_event(0), 16U);
  EXPECT_EQ(f.next_scrub_event(16), 32U);

  f.clock_scrub(15);  // off-tick: no-op
  EXPECT_EQ(f.pending_scrub_work(), before);
  f.clock_scrub(16);
  EXPECT_EQ(f.pending_scrub_work(), 0U);
  EXPECT_EQ(reg.find_counter("cube0.ecc.scrub_repaired")->value(), 1U);
  EXPECT_EQ(reg.find_counter("cube0.ecc.scrub_uncorrectable")->value(), 1U);
  EXPECT_GE(reg.find_counter("cube0.ecc.scrub_stuck")->value(), 1U);
  // All work drained: the scrubber must never re-arm on parked or
  // already-visited words (that would spin the active scheduler awake).
  EXPECT_EQ(f.next_scrub_event(16),
            std::numeric_limits<std::uint64_t>::max());
  // The parked multi-bit word still errs on read...
  EXPECT_EQ(std::popcount(f.read_error_bits(0, 0x308, 0, 20)), 2);
  // ...until a write repairs it for real.
  f.note_write(0x308, 8);
  EXPECT_EQ(f.read_error_bits(0, 0x308, 0, 21), 0U);
}

TEST(FaultInjector, BackdoorClearRangeIsSilent) {
  metrics::StatRegistry reg;
  FaultInjector f(fault_config(0, 1, 1024, 1), 0, reg, "cube0");
  f.inject_transient(0x400, 1ULL << 9);
  const std::uint64_t scrubbed =
      reg.find_counter("cube0.ecc.scrub_repaired")->value();
  f.clear_range(0x400, 8);
  EXPECT_EQ(f.read_error_bits(0, 0x400, 0, 5), 0U);
  EXPECT_EQ(reg.find_counter("cube0.ecc.scrub_repaired")->value(), scrubbed);
}

TEST(FaultInjector, StuckPlacementDeterministicPerSeedAndCube) {
  // Placement depends only on (seed, cube): two injectors agree, and a
  // different cube id gives a different (but still deterministic) layout.
  metrics::StatRegistry ra, rb, rc;
  const sim::Config cfg = fault_config(0, 0xBEEF, 1024, 256);
  FaultInjector a(cfg, 0, ra, "cube0");
  FaultInjector b(cfg, 0, rb, "cube0");
  FaultInjector c(cfg, 1, rc, "cube1");
  EXPECT_EQ(a.pending_scrub_work(), b.pending_scrub_work());
  bool differs = false;
  // Probe a sample of the address space: identical for a/b.
  for (std::uint64_t w = 0; w < 4096; ++w) {
    const std::uint64_t addr = w * 8;
    EXPECT_EQ(a.read_error_bits(0, addr, 0, 0),
              b.read_error_bits(0, addr, 0, 0));
    differs |= a.read_error_bits(0, addr, 0, 0) !=
               c.read_error_bits(0, addr, 0, 0);
  }
  (void)differs;  // Cube separation is probabilistic over the sample.
}

TEST(FaultInjector, SimulatorScheduleIdenticalAcrossThreadCounts) {
  // End-to-end pin of the tentpole contract: the full per-cube ECC record
  // of a faulty multi-cube run is byte-identical for every worker count,
  // including a mid-run set_threads change.
  auto run = [](std::uint32_t threads) {
    sim::Config cfg = fault_config(250'000, 0xFA117, 64, 32);
    cfg.num_devs = 4;
    cfg.topology = sim::Topology::Chain;
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(cfg, sim).ok());
    EXPECT_TRUE(sim->set_threads(threads).ok());
    std::uint16_t tag = 0;
    for (int round = 0; round < 3; ++round) {
      for (std::uint8_t cub = 0; cub < 4; ++cub) {
        for (std::uint32_t i = 0; i < 4; ++i) {
          spec::RqstParams rd;
          rd.rqst = spec::Rqst::RD64;
          rd.addr = i * 64 + round * 4096;
          rd.tag = tag++;
          rd.cub = cub;
          Status s = sim->send(rd, tag % 4);
          int guard = 0;
          while (s.stalled() && guard++ < 1000) {
            sim->clock();
            s = sim->send(rd, tag % 4);
          }
          EXPECT_TRUE(s.ok());
        }
      }
      for (int c = 0; c < 120; ++c) {
        sim->clock();
      }
    }
    sim::Response rsp;
    for (std::uint32_t l = 0; l < 4; ++l) {
      while (sim->recv(l, rsp).ok()) {
      }
    }
    return sim::format_stats_json(*sim);
  };
  const std::string golden = run(1);
  // The JSON nests dotted paths: an "ecc" object with a live counter.
  EXPECT_NE(golden.find("\"ecc\""), std::string::npos);
  EXPECT_NE(golden.find("\"injected\""), std::string::npos);
  EXPECT_EQ(golden.find("\"injected\": 0"), std::string::npos);
  EXPECT_EQ(golden, run(2));
  EXPECT_EQ(golden, run(4));
  EXPECT_EQ(golden, run(8));
}

}  // namespace
}  // namespace hmcsim::mem
