// thread_sim_test.cpp — cooperative host-thread scheduler tests.
#include "src/host/thread_sim.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace hmcsim::host {
namespace {

class ThreadSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim_).ok());
  }
  std::unique_ptr<sim::Simulator> sim_;
};

TEST_F(ThreadSimTest, LinkAssignmentIsRoundRobin) {
  ThreadSim ts(*sim_, 10);
  EXPECT_EQ(ts.link_for(0), 0U);
  EXPECT_EQ(ts.link_for(1), 1U);
  EXPECT_EQ(ts.link_for(3), 3U);
  EXPECT_EQ(ts.link_for(4), 0U);
  EXPECT_EQ(ts.link_for(9), 1U);
}

TEST_F(ThreadSimTest, IssueAndComplete) {
  ThreadSim ts(*sim_, 2);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  ASSERT_TRUE(ts.issue(0, rd).ok());
  EXPECT_FALSE(ts.idle(0));
  EXPECT_TRUE(ts.idle(1));

  std::vector<Completion> done;
  for (int i = 0; i < 10 && done.empty(); ++i) {
    ts.step([&](const Completion& c) { done.push_back(c); });
  }
  ASSERT_EQ(done.size(), 1U);
  EXPECT_EQ(done[0].tid, 0U);
  EXPECT_EQ(done[0].rsp.latency, 3U);
  EXPECT_TRUE(ts.idle(0));
}

TEST_F(ThreadSimTest, OneOutstandingPerThreadEnforced) {
  ThreadSim ts(*sim_, 1);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  ASSERT_TRUE(ts.issue(0, rd).ok());
  EXPECT_EQ(ts.issue(0, rd).code(), StatusCode::InvalidState);
}

TEST_F(ThreadSimTest, PostedRequestLeavesThreadIdle) {
  ThreadSim ts(*sim_, 1);
  const std::array<std::uint64_t, 2> data{1, 2};
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::P_WR16;
  wr.addr = 0x100;
  wr.payload = data;
  ASSERT_TRUE(ts.issue(0, wr).ok());
  EXPECT_TRUE(ts.idle(0));  // No response expected.
}

TEST_F(ThreadSimTest, InvalidThreadRejected) {
  ThreadSim ts(*sim_, 2);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  EXPECT_FALSE(ts.issue(2, rd).ok());
}

TEST_F(ThreadSimTest, ManyThreadsAllComplete) {
  constexpr std::uint32_t kThreads = 64;
  ThreadSim ts(*sim_, kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0x1000 + 64ULL * t;  // Spread across vaults.
    ASSERT_TRUE(ts.issue(t, rd).ok());
  }
  std::vector<bool> done(kThreads, false);
  std::uint32_t count = 0;
  for (int i = 0; i < 200 && count < kThreads; ++i) {
    ts.step([&](const Completion& c) {
      EXPECT_FALSE(done[c.tid]);
      done[c.tid] = true;
      ++count;
    });
  }
  EXPECT_EQ(count, kThreads);
}

TEST_F(ThreadSimTest, IssueFromCompletionHandler) {
  ThreadSim ts(*sim_, 1);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x40;
  ASSERT_TRUE(ts.issue(0, rd).ok());
  int completions = 0;
  for (int i = 0; i < 20 && completions < 3; ++i) {
    ts.step([&](const Completion&) {
      ++completions;
      if (completions < 3) {
        EXPECT_TRUE(ts.issue(0, rd).ok());
      }
    });
  }
  EXPECT_EQ(completions, 3);
}

TEST_F(ThreadSimTest, StalledSendsRetryAutomatically) {
  // Tiny queues force stalls: every thread targets the same vault.
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.xbar_depth = 2;
  cfg.vault_rqst_depth = 1;
  cfg.vault_rsp_depth = 1;
  cfg.xbar_rqst_bw_flits = 17;
  cfg.xbar_rsp_bw_flits = 17;
  std::unique_ptr<sim::Simulator> tiny;
  ASSERT_TRUE(sim::Simulator::create(cfg, tiny).ok());

  constexpr std::uint32_t kThreads = 16;
  ThreadSim ts(*tiny, kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0;  // Hot spot.
    ASSERT_TRUE(ts.issue(t, rd).ok());
  }
  std::uint32_t count = 0;
  for (int i = 0; i < 2000 && count < kThreads; ++i) {
    ts.step([&](const Completion&) { ++count; });
  }
  EXPECT_EQ(count, kThreads);
  EXPECT_GT(ts.send_retries(), 0U);
}

TEST_F(ThreadSimTest, ThreadCountCappedToTagSpace) {
  ThreadSim ts(*sim_, 5000);
  EXPECT_EQ(ts.num_threads(), spec::kMaxTag);
}

}  // namespace
}  // namespace hmcsim::host
