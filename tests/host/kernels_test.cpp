// kernels_test.cpp — workload kernel tests (STREAM Triad, RandomAccess,
// pointer chase) and the Table II AMO cost model.
#include <gtest/gtest.h>

#include "src/host/cache_amo_model.hpp"
#include "src/host/kernels/bfs.hpp"
#include "src/host/kernels/histogram.hpp"
#include "src/host/kernels/pointer_chase.hpp"
#include "src/host/kernels/random_access.hpp"
#include "src/host/kernels/stream_triad.hpp"

namespace hmcsim::host {
namespace {

std::unique_ptr<sim::Simulator> make_sim(
    const sim::Config& cfg = sim::Config::hmc_4link_4gb()) {
  std::unique_ptr<sim::Simulator> sim;
  EXPECT_TRUE(sim::Simulator::create(cfg, sim).ok());
  return sim;
}

// ---- Table II cost model ---------------------------------------------------

TEST(CacheAmoModel, TableIIRow1CacheBased) {
  // "Read 64 Bytes + Write 64 Bytes = (1FLIT + 5FLITS) + (5FLITS + 1FLIT)
  //  = 1536 bytes"
  const AmoCost cost = cache_amo_cost(64);
  EXPECT_EQ(cost.request_flits, 6U);   // 1 (RD rqst) + 5 (WR rqst).
  EXPECT_EQ(cost.response_flits, 6U);  // 5 (RD rsp) + 1 (WR rsp).
  EXPECT_EQ(cost.total_flits(), 12U);
  EXPECT_EQ(cost.total_bytes(), 1536U);
}

TEST(CacheAmoModel, TableIIRow2HmcBased) {
  // "INC8 Command = 1FLIT + 1FLIT = 256 bytes"
  const AmoCost cost = hmc_amo_cost(spec::Rqst::INC8);
  EXPECT_EQ(cost.request_flits, 1U);
  EXPECT_EQ(cost.response_flits, 1U);
  EXPECT_EQ(cost.total_bytes(), 256U);
}

TEST(CacheAmoModel, RatioIsSixFold) {
  EXPECT_EQ(cache_amo_cost(64).total_bytes() /
                hmc_amo_cost(spec::Rqst::INC8).total_bytes(),
            6U);
}

TEST(CacheAmoModel, OtherLineSizes) {
  EXPECT_EQ(cache_amo_cost(128).total_flits(), 20U);  // (1+9)+(9+1).
  EXPECT_EQ(cache_amo_cost(32).total_flits(), 8U);    // (1+3)+(3+1).
}

TEST(CacheAmoModel, MeasuredTrafficMatchesAnalyticModel) {
  auto sim = make_sim();
  MeasuredAmoTraffic cache;
  ASSERT_TRUE(measure_cache_amo(*sim, /*count=*/10, 64, cache).ok());
  EXPECT_EQ(cache.rqst_flits, 10 * cache_amo_cost(64).request_flits);
  EXPECT_EQ(cache.rsp_flits, 10 * cache_amo_cost(64).response_flits);

  auto sim2 = make_sim();
  MeasuredAmoTraffic hmc;
  ASSERT_TRUE(measure_hmc_amo(*sim2, 10, hmc).ok());
  EXPECT_EQ(hmc.rqst_flits, 10U);
  EXPECT_EQ(hmc.rsp_flits, 10U);
  EXPECT_LT(hmc.cycles, cache.cycles);  // PIM path is also faster.
}

// ---- STREAM Triad ------------------------------------------------------------

TEST(StreamTriad, VerifiesResultVector) {
  auto sim = make_sim();
  StreamTriadOptions opts;
  opts.elements = 512;
  opts.concurrency = 16;
  KernelResult result;
  ASSERT_TRUE(run_stream_triad(*sim, opts, result).ok());
  EXPECT_EQ(result.operations, 512U);
  EXPECT_GT(result.cycles, 0U);
  EXPECT_GT(result.rqst_flits, 0U);
}

TEST(StreamTriad, RejectsBadOptions) {
  auto sim = make_sim();
  KernelResult result;
  StreamTriadOptions opts;
  opts.block_bytes = 24;
  EXPECT_FALSE(run_stream_triad(*sim, opts, result).ok());
  opts = StreamTriadOptions{};
  opts.elements = 0;
  EXPECT_FALSE(run_stream_triad(*sim, opts, result).ok());
  opts = StreamTriadOptions{};
  opts.concurrency = 0;
  EXPECT_FALSE(run_stream_triad(*sim, opts, result).ok());
}

TEST(StreamTriad, FlitTrafficMatchesBlockArithmetic) {
  auto sim = make_sim();
  StreamTriadOptions opts;
  opts.elements = 256;   // 256 doubles = 2048 B = 32 blocks of 64 B.
  opts.block_bytes = 64;
  opts.concurrency = 8;
  KernelResult result;
  ASSERT_TRUE(run_stream_triad(*sim, opts, result).ok());
  // Per block: RD(1) + RD(1) + WR(5) = 7 request FLITs,
  //            RDRS(5) + RDRS(5) + WRRS(1) = 11 response FLITs.
  EXPECT_EQ(result.rqst_flits, 32U * 7U);
  EXPECT_EQ(result.rsp_flits, 32U * 11U);
}

TEST(StreamTriad, MoreConcurrencyIsFaster) {
  StreamTriadOptions opts;
  opts.elements = 2048;
  opts.concurrency = 1;
  KernelResult serial;
  {
    auto sim = make_sim();
    ASSERT_TRUE(run_stream_triad(*sim, opts, serial).ok());
  }
  opts.concurrency = 32;
  KernelResult parallel;
  {
    auto sim = make_sim();
    ASSERT_TRUE(run_stream_triad(*sim, opts, parallel).ok());
  }
  EXPECT_LT(parallel.cycles, serial.cycles / 4);
}

// ---- RandomAccess (GUPS) ----------------------------------------------------------

TEST(RandomAccess, AtomicModeVerifies) {
  auto sim = make_sim();
  RandomAccessOptions opts;
  opts.table_words = 1 << 12;
  opts.updates = 1024;
  opts.mode = GupsMode::Atomic;
  KernelResult result;
  ASSERT_TRUE(run_random_access(*sim, opts, result).ok());
  EXPECT_EQ(result.operations, 1024U);
  // XOR16: 2 request FLITs + 2 response FLITs per update.
  EXPECT_EQ(result.rqst_flits, 2048U);
  EXPECT_EQ(result.rsp_flits, 2048U);
}

TEST(RandomAccess, RmwModeVerifies) {
  auto sim = make_sim();
  RandomAccessOptions opts;
  opts.table_words = 1 << 12;
  opts.updates = 1024;
  opts.mode = GupsMode::ReadModifyWrite;
  KernelResult result;
  ASSERT_TRUE(run_random_access(*sim, opts, result).ok());
  // RD16 (1+2) + WR16 (2+1) per update.
  EXPECT_EQ(result.rqst_flits, 3 * 1024U);
  EXPECT_EQ(result.rsp_flits, 3 * 1024U);
}

TEST(RandomAccess, AtomicBeatsRmwOnTrafficAndTime) {
  RandomAccessOptions opts;
  opts.table_words = 1 << 12;
  opts.updates = 2048;
  KernelResult atomic;
  KernelResult rmw;
  {
    auto sim = make_sim();
    opts.mode = GupsMode::Atomic;
    ASSERT_TRUE(run_random_access(*sim, opts, atomic).ok());
  }
  {
    auto sim = make_sim();
    opts.mode = GupsMode::ReadModifyWrite;
    ASSERT_TRUE(run_random_access(*sim, opts, rmw).ok());
  }
  EXPECT_LT(atomic.rqst_flits + atomic.rsp_flits,
            rmw.rqst_flits + rmw.rsp_flits);
  EXPECT_LT(atomic.cycles, rmw.cycles);
}

TEST(RandomAccess, DeterministicForSeed) {
  RandomAccessOptions opts;
  opts.table_words = 1 << 10;
  opts.updates = 512;
  KernelResult a;
  KernelResult b;
  {
    auto sim = make_sim();
    ASSERT_TRUE(run_random_access(*sim, opts, a).ok());
  }
  {
    auto sim = make_sim();
    ASSERT_TRUE(run_random_access(*sim, opts, b).ok());
  }
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.rqst_flits, b.rqst_flits);
}

TEST(RandomAccess, RejectsBadOptions) {
  auto sim = make_sim();
  KernelResult result;
  RandomAccessOptions opts;
  opts.table_words = 1000;  // Not a power of two.
  EXPECT_FALSE(run_random_access(*sim, opts, result).ok());
  opts = RandomAccessOptions{};
  opts.table_base = 8;  // Misaligned.
  EXPECT_FALSE(run_random_access(*sim, opts, result).ok());
}

// ---- pointer chase -----------------------------------------------------------------

TEST(PointerChase, SingleChainLatencyIsRoundTripPerHop) {
  auto sim = make_sim();
  PointerChaseOptions opts;
  opts.nodes = 1024;
  opts.hops = 200;
  opts.chains = 1;
  KernelResult result;
  ASSERT_TRUE(run_pointer_chase(*sim, opts, result).ok());
  // Fully dependent loads: every hop costs one full 3-cycle round trip
  // plus the send/recv cycle overlap of the driver loop.
  const double cycles_per_hop =
      static_cast<double>(result.cycles) / static_cast<double>(opts.hops);
  EXPECT_GE(cycles_per_hop, 3.0);
  EXPECT_LE(cycles_per_hop, 4.0);
}

TEST(PointerChase, ParallelChainsOverlapLatency) {
  PointerChaseOptions opts;
  opts.nodes = 4096;
  opts.hops = 200;
  opts.chains = 1;
  KernelResult one;
  {
    auto sim = make_sim();
    ASSERT_TRUE(run_pointer_chase(*sim, opts, one).ok());
  }
  opts.chains = 8;
  KernelResult eight;
  {
    auto sim = make_sim();
    ASSERT_TRUE(run_pointer_chase(*sim, opts, eight).ok());
  }
  // 8x the work in barely more time.
  EXPECT_EQ(eight.operations, 8 * one.operations);
  EXPECT_LT(eight.cycles, 2 * one.cycles);
}

TEST(PointerChase, RejectsBadOptions) {
  auto sim = make_sim();
  KernelResult result;
  PointerChaseOptions opts;
  opts.nodes = 1;
  EXPECT_FALSE(run_pointer_chase(*sim, opts, result).ok());
  opts = PointerChaseOptions{};
  opts.base = 7;
  EXPECT_FALSE(run_pointer_chase(*sim, opts, result).ok());
}

// ---- histogram (posted-atomic showcase) ----------------------------------------

class HistogramModeTest
    : public ::testing::TestWithParam<HistogramMode> {};

TEST_P(HistogramModeTest, VerifiesAgainstHostHistogram) {
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(
      sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
  HistogramOptions opts;
  opts.updates = 2048;
  opts.buckets = 128;
  opts.mode = GetParam();
  KernelResult result;
  ASSERT_TRUE(run_histogram(*sim, opts, result).ok());  // verify inside.
  EXPECT_EQ(result.operations, 2048U);
}

INSTANTIATE_TEST_SUITE_P(AllModes, HistogramModeTest,
                         ::testing::Values(HistogramMode::ReadModifyWrite,
                                           HistogramMode::Atomic,
                                           HistogramMode::PostedAtomic),
                         [](const auto& info) {
                           switch (info.param) {
                             case HistogramMode::ReadModifyWrite:
                               return "rmw";
                             case HistogramMode::Atomic:
                               return "atomic";
                             default:
                               return "posted";
                           }
                         });

TEST(Histogram, PostedHalvesAtomicTrafficAndCrushesRmw) {
  HistogramOptions opts;
  opts.updates = 4096;
  opts.buckets = 256;
  std::array<KernelResult, 3> results;
  const HistogramMode modes[] = {HistogramMode::ReadModifyWrite,
                                 HistogramMode::Atomic,
                                 HistogramMode::PostedAtomic};
  for (int i = 0; i < 3; ++i) {
    std::unique_ptr<sim::Simulator> sim;
    ASSERT_TRUE(
        sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
    opts.mode = modes[i];
    ASSERT_TRUE(run_histogram(*sim, opts, results[i]).ok());
  }
  const auto flits = [](const KernelResult& r) {
    return r.rqst_flits + r.rsp_flits;
  };
  // RMW: 6 FLITs/op, atomic: 2, posted: 1 — exactly Table I arithmetic.
  EXPECT_EQ(flits(results[0]), 6 * 4096U);
  EXPECT_EQ(flits(results[1]), 2 * 4096U);
  EXPECT_EQ(flits(results[2]), 1 * 4096U);
  EXPECT_LT(results[2].cycles, results[1].cycles);
  EXPECT_LT(results[1].cycles, results[0].cycles);
}

TEST(Histogram, RejectsBadOptions) {
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(
      sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
  KernelResult result;
  HistogramOptions opts;
  opts.buckets = 0;
  EXPECT_FALSE(run_histogram(*sim, opts, result).ok());
  opts = HistogramOptions{};
  opts.base = 8;
  EXPECT_FALSE(run_histogram(*sim, opts, result).ok());
}

// ---- BFS (CAS-accelerated graph traversal) ------------------------------------

TEST(Bfs, CasModeVerifiesAgainstReference) {
  auto sim = make_sim();
  BfsOptions opts;
  opts.vertices = 512;
  opts.avg_degree = 6;
  opts.mode = BfsMode::CasAtomic;
  BfsResult result;
  ASSERT_TRUE(run_bfs(*sim, opts, result).ok());  // verify=true inside.
  EXPECT_GT(result.reached, 1U);
  EXPECT_GT(result.kernel.cycles, 0U);
  EXPECT_GE(result.edges_probed, result.reached - 1);
}

TEST(Bfs, RmwModeVerifiesAgainstReference) {
  auto sim = make_sim();
  BfsOptions opts;
  opts.vertices = 512;
  opts.avg_degree = 6;
  opts.mode = BfsMode::ReadModifyWrite;
  BfsResult result;
  ASSERT_TRUE(run_bfs(*sim, opts, result).ok());
  EXPECT_GT(result.reached, 1U);
}

TEST(Bfs, BothModesReachTheSameVertices) {
  BfsOptions opts;
  opts.vertices = 768;
  opts.avg_degree = 4;
  opts.seed = 1234;
  BfsResult cas;
  BfsResult rmw;
  {
    auto sim = make_sim();
    opts.mode = BfsMode::CasAtomic;
    ASSERT_TRUE(run_bfs(*sim, opts, cas).ok());
  }
  {
    auto sim = make_sim();
    opts.mode = BfsMode::ReadModifyWrite;
    ASSERT_TRUE(run_bfs(*sim, opts, rmw).ok());
  }
  EXPECT_EQ(cas.reached, rmw.reached);
  EXPECT_EQ(cas.max_level, rmw.max_level);
}

TEST(Bfs, CasOffloadSavesTrafficAndTime) {
  BfsOptions opts;
  opts.vertices = 1024;
  opts.avg_degree = 8;
  BfsResult cas;
  BfsResult rmw;
  {
    auto sim = make_sim();
    opts.mode = BfsMode::CasAtomic;
    ASSERT_TRUE(run_bfs(*sim, opts, cas).ok());
  }
  {
    auto sim = make_sim();
    opts.mode = BfsMode::ReadModifyWrite;
    ASSERT_TRUE(run_bfs(*sim, opts, rmw).ok());
  }
  EXPECT_LT(cas.kernel.rqst_flits + cas.kernel.rsp_flits,
            rmw.kernel.rqst_flits + rmw.kernel.rsp_flits);
  EXPECT_LT(cas.kernel.cycles, rmw.kernel.cycles);
}

TEST(Bfs, IsolatedRootTerminates) {
  auto sim = make_sim();
  BfsOptions opts;
  opts.vertices = 16;
  opts.avg_degree = 0;  // No edges at all.
  BfsResult result;
  ASSERT_TRUE(run_bfs(*sim, opts, result).ok());
  EXPECT_EQ(result.reached, 1U);
  EXPECT_EQ(result.edges_probed, 0U);
}

TEST(Bfs, RejectsBadOptions) {
  auto sim = make_sim();
  BfsResult result;
  BfsOptions opts;
  opts.root = opts.vertices;  // Out of range.
  EXPECT_FALSE(run_bfs(*sim, opts, result).ok());
  opts = BfsOptions{};
  opts.concurrency = 0;
  EXPECT_FALSE(run_bfs(*sim, opts, result).ok());
  opts = BfsOptions{};
  opts.visited_base = 8;
  EXPECT_FALSE(run_bfs(*sim, opts, result).ok());
}

}  // namespace
}  // namespace hmcsim::host
