// trace_replay_test.cpp — trace format parsing, round trips and replay.
#include "src/host/trace_replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "plugins/builtin.h"

namespace hmcsim::host {
namespace {

std::unique_ptr<sim::Simulator> make_sim() {
  std::unique_ptr<sim::Simulator> sim;
  EXPECT_TRUE(
      sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
  return sim;
}

TEST(TraceParse, BasicLines) {
  std::istringstream in(R"(# a comment

  # indented comment
0 0 WR16 0 1000 deadbeef 42
3 1 RD16 0 1000
5 2 INC8 0 2000
)");
  std::vector<TraceRecord> records;
  ASSERT_TRUE(parse_trace(in, records).ok());
  ASSERT_EQ(records.size(), 3U);
  EXPECT_EQ(records[0].rqst, spec::Rqst::WR16);
  EXPECT_EQ(records[0].addr, 0x1000ULL);
  ASSERT_EQ(records[0].payload.size(), 2U);
  EXPECT_EQ(records[0].payload[0], 0xDEADBEEFULL);
  EXPECT_EQ(records[0].payload[1], 0x42ULL);
  EXPECT_EQ(records[1].issue_cycle, 3U);
  EXPECT_EQ(records[1].link, 1U);
  EXPECT_EQ(records[2].rqst, spec::Rqst::INC8);
}

TEST(TraceParse, AcceptsCrlfLineEndings) {
  std::istringstream in("0 0 WR16 0 1000 11 22\r\n1 1 RD16 0 1000\r\n");
  std::vector<TraceRecord> records;
  ASSERT_TRUE(parse_trace(in, records).ok());
  ASSERT_EQ(records.size(), 2U);
  ASSERT_EQ(records[0].payload.size(), 2U);
  EXPECT_EQ(records[0].payload[1], 0x22ULL);
}

TEST(TraceParse, TrailingCommentEndsTheLine) {
  std::istringstream in(R"(0 0 RD16 0 1000 # issued by core 3
1 0 WR16 0 1000 11 22 # two payload words, then prose
)");
  std::vector<TraceRecord> records;
  ASSERT_TRUE(parse_trace(in, records).ok());
  ASSERT_EQ(records.size(), 2U);
  EXPECT_TRUE(records[0].payload.empty());
  ASSERT_EQ(records[1].payload.size(), 2U);
  EXPECT_EQ(records[1].payload[0], 0x11ULL);
}

TEST(TraceParse, MalformedPayloadWordIsLineNumbered) {
  std::istringstream in("0 0 RD16 0 1000\n1 0 WR16 0 1000 11 zz\n");
  std::vector<TraceRecord> records;
  const Status s = parse_trace(in, records);
  EXPECT_EQ(s.code(), StatusCode::InvalidArg);
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_NE(s.message().find("'zz'"), std::string::npos);
}

TEST(TraceParse, ShortLineIsLineNumbered) {
  std::istringstream in("0 0 RD16 0 1000\n\n# gap\n7 0\n");
  std::vector<TraceRecord> records;
  const Status s = parse_trace(in, records);
  EXPECT_EQ(s.code(), StatusCode::InvalidArg);
  // Blank and comment lines still count toward the reported line number.
  EXPECT_NE(s.message().find("line 4"), std::string::npos);
}

TEST(TraceParse, RejectsUnknownCommand) {
  std::istringstream in("0 0 BOGUS 0 0\n");
  std::vector<TraceRecord> records;
  const Status s = parse_trace(in, records);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("BOGUS"), std::string::npos);
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(TraceParse, RejectsShortLine) {
  std::istringstream in("0 0 RD16\n");
  std::vector<TraceRecord> records;
  EXPECT_FALSE(parse_trace(in, records).ok());
}

TEST(TraceParse, RejectsOutOfOrderCycles) {
  std::istringstream in("5 0 RD16 0 0\n2 0 RD16 0 0\n");
  std::vector<TraceRecord> records;
  EXPECT_FALSE(parse_trace(in, records).ok());
}

TEST(TraceParse, RejectsBadCub) {
  std::istringstream in("0 0 RD16 9 0\n");
  std::vector<TraceRecord> records;
  EXPECT_FALSE(parse_trace(in, records).ok());
}

TEST(TraceParse, RejectsOversizedPayload) {
  std::ostringstream line;
  line << "0 0 WR256 0 0";
  for (int i = 0; i < 33; ++i) {
    line << " 1";
  }
  std::istringstream in(line.str());
  std::vector<TraceRecord> records;
  EXPECT_FALSE(parse_trace(in, records).ok());
}

TEST(TraceFormat, WriteParseRoundTrip) {
  TraceBuilder builder(4);
  builder.add(spec::Rqst::WR16, 0x100, {0xAB, 0xCD})
      .add(spec::Rqst::RD64, 0x2000, {}, 3)
      .add(spec::Rqst::CMC125, 0x4000, {7, 0}, 2);
  const auto original = builder.records();

  std::ostringstream os;
  write_trace(os, original);
  std::istringstream is(os.str());
  std::vector<TraceRecord> parsed;
  ASSERT_TRUE(parse_trace(is, parsed).ok());
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].issue_cycle, original[i].issue_cycle) << i;
    EXPECT_EQ(parsed[i].link, original[i].link) << i;
    EXPECT_EQ(parsed[i].rqst, original[i].rqst) << i;
    EXPECT_EQ(parsed[i].addr, original[i].addr) << i;
    EXPECT_EQ(parsed[i].payload, original[i].payload) << i;
  }
}

TEST(TraceFile, SaveLoadRoundTrip) {
  TraceBuilder builder(4);
  builder.add(spec::Rqst::INC8, 0x40).add(spec::Rqst::RD16, 0x40);
  const std::string path = ::testing::TempDir() + "/replay_test.trace";
  ASSERT_TRUE(save_trace(path, builder.records()).ok());
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(load_trace(path, loaded).ok());
  EXPECT_EQ(loaded.size(), 2U);
  EXPECT_EQ(loaded[0].rqst, spec::Rqst::INC8);
}

TEST(TraceFile, LoadMissingFileFails) {
  std::vector<TraceRecord> records;
  EXPECT_EQ(load_trace("/nonexistent/file.trace", records).code(),
            StatusCode::NotFound);
}

TEST(TraceBuilderApi, RoundRobinLinksAndGaps) {
  TraceBuilder builder(4);
  for (int i = 0; i < 6; ++i) {
    builder.add(spec::Rqst::RD16, 0, {}, 2);
  }
  const auto& records = builder.records();
  EXPECT_EQ(records[0].link, 0U);
  EXPECT_EQ(records[1].link, 1U);
  EXPECT_EQ(records[4].link, 0U);
  EXPECT_EQ(records[0].issue_cycle, 2U);
  EXPECT_EQ(records[5].issue_cycle, 12U);
}

TEST(TraceReplay, MemoryEffectsApplied) {
  auto sim = make_sim();
  TraceBuilder builder(4);
  builder.add(spec::Rqst::WR16, 0x1000, {0x1111, 0x2222})
      .add(spec::Rqst::INC8, 0x1000)
      .add(spec::Rqst::INC8, 0x1000)
      .add(spec::Rqst::P_WR16, 0x2000, {0x9999, 0});
  ReplayResult result;
  ASSERT_TRUE(replay_trace(*sim, builder.records(), result).ok());
  EXPECT_EQ(result.requests_issued, 4U);
  EXPECT_EQ(result.responses_received, 3U);  // P_WR16 is posted.
  EXPECT_EQ(result.error_responses, 0U);

  std::uint64_t v = 0;
  ASSERT_TRUE(sim->device(0).store().read_u64(0x1000, v).ok());
  EXPECT_EQ(v, 0x1113ULL);  // 0x1111 + 2 increments.
  ASSERT_TRUE(sim->device(0).store().read_u64(0x2000, v).ok());
  EXPECT_EQ(v, 0x9999ULL);
}

TEST(TraceReplay, HonorsIssueCycles) {
  auto sim = make_sim();
  std::vector<TraceRecord> records(1);
  records[0].issue_cycle = 50;
  records[0].rqst = spec::Rqst::RD16;
  ReplayResult result;
  ASSERT_TRUE(replay_trace(*sim, records, result).ok());
  // Response latency is 3; total simulated span >= 53 cycles.
  EXPECT_GE(sim->cycle(), 53U);
  EXPECT_LE(result.cycles, 4U);  // But issue-to-response is still short.
}

TEST(TraceReplay, CmcRecordsNeedRegistration) {
  auto sim = make_sim();
  TraceBuilder builder(4);
  builder.add(spec::Rqst::CMC125, 0x4000, {1, 0});
  ReplayResult result;
  // Unregistered CMC: send() fails and the replay reports the error.
  EXPECT_FALSE(replay_trace(*sim, builder.records(), result).ok());

  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_lock_register,
                                hmcsim_builtin_lock_execute,
                                hmcsim_builtin_lock_str).ok());
  ASSERT_TRUE(replay_trace(*sim, builder.records(), result).ok());
  EXPECT_EQ(result.responses_received, 1U);
  std::uint64_t owner = 0;
  ASSERT_TRUE(sim->device(0).store().read_u64(0x4008, owner).ok());
  EXPECT_EQ(owner, 1ULL);
}

TEST(TraceReplay, ErrorResponsesCounted) {
  auto sim = make_sim();
  std::vector<TraceRecord> records(1);
  records[0].rqst = spec::Rqst::RD16;
  records[0].addr = (1ULL << 34) - 64;  // Beyond the 4 GiB device.
  ReplayResult result;
  ASSERT_TRUE(replay_trace(*sim, records, result).ok());
  EXPECT_EQ(result.error_responses, 1U);
}

TEST(TraceReplay, LargeTraceCompletes) {
  auto sim = make_sim();
  TraceBuilder builder(4);
  for (int i = 0; i < 2000; ++i) {
    const bool write = i % 2 == 0;
    builder.add(write ? spec::Rqst::WR16 : spec::Rqst::RD16,
                64ULL * static_cast<std::uint64_t>(i % 256),
                write ? std::vector<std::uint64_t>{1, 2}
                      : std::vector<std::uint64_t>{},
                /*gap=*/0);
  }
  ReplayResult result;
  ASSERT_TRUE(replay_trace(*sim, builder.records(), result).ok());
  EXPECT_EQ(result.requests_issued, 2000U);
  EXPECT_EQ(result.responses_received, 2000U);
  EXPECT_GT(result.rqst_flits, 2000U);
}

}  // namespace
}  // namespace hmcsim::host
