// cache_test.cpp — set-associative cache unit tests.
#include "src/host/cache/cache.hpp"

#include <gtest/gtest.h>

#include <array>

namespace hmcsim::host {
namespace {

CacheConfig tiny_cache() {
  CacheConfig cfg;
  cfg.size_bytes = 1024;  // 4 sets x 4 ways x 64 B.
  cfg.line_bytes = 64;
  cfg.ways = 4;
  return cfg;
}

std::vector<std::uint8_t> pattern_line(std::uint8_t seed,
                                       std::uint32_t bytes = 64) {
  std::vector<std::uint8_t> data(bytes);
  for (std::uint32_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::uint8_t>(seed + i);
  }
  return data;
}

TEST(CacheConfig, Validation) {
  EXPECT_TRUE(tiny_cache().validate().ok());
  EXPECT_TRUE(CacheConfig{}.validate().ok());
  CacheConfig bad = tiny_cache();
  bad.line_bytes = 48;
  EXPECT_FALSE(bad.validate().ok());
  bad = tiny_cache();
  bad.ways = 0;
  EXPECT_FALSE(bad.validate().ok());
  bad = tiny_cache();
  bad.size_bytes = 1000;
  EXPECT_FALSE(bad.validate().ok());
}

TEST(Cache, MissOnCold) {
  Cache cache(tiny_cache());
  std::array<std::uint8_t, 8> buf{};
  EXPECT_FALSE(cache.read(0x100, buf));
  EXPECT_FALSE(cache.write(0x100, buf));
  EXPECT_EQ(cache.stats().misses, 2U);
  EXPECT_EQ(cache.stats().hits, 0U);
  EXPECT_EQ(cache.resident_lines(), 0U);
}

TEST(Cache, FillThenHit) {
  Cache cache(tiny_cache());
  const auto data = pattern_line(0x10);
  EXPECT_FALSE(cache.fill(0x100 & ~63ULL, data, false).has_value());
  EXPECT_TRUE(cache.contains(0x100));
  std::array<std::uint8_t, 8> buf{};
  ASSERT_TRUE(cache.read(0x108, buf));  // Offset 8 within the line.
  EXPECT_EQ(buf[0], static_cast<std::uint8_t>(0x10 + 8));
  EXPECT_EQ(cache.stats().hits, 1U);
}

TEST(Cache, WriteMarksDirtyAndUpdatesData) {
  Cache cache(tiny_cache());
  (void)cache.fill(0, pattern_line(0), false);
  const std::array<std::uint8_t, 8> in{9, 9, 9, 9, 9, 9, 9, 9};
  ASSERT_TRUE(cache.write(8, in));
  std::array<std::uint8_t, 8> out{};
  ASSERT_TRUE(cache.read(8, out));
  EXPECT_EQ(out, in);
  // Dirty data comes back on invalidation.
  const auto dropped = cache.invalidate(0);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_TRUE(dropped->dirty);
  EXPECT_EQ(dropped->data[8], 9);
}

TEST(Cache, StraddlingAccessIsMiss) {
  Cache cache(tiny_cache());
  (void)cache.fill(0, pattern_line(0), false);
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(cache.read(56, buf));  // Crosses the 64 B line end.
}

TEST(Cache, LruEvictionOrder) {
  Cache cache(tiny_cache());  // 4 ways per set.
  // Five lines mapping to set 0 (stride = sets * line = 4 * 64 = 256).
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(cache.fill(i * 256, pattern_line(std::uint8_t(i)), false)
                     .has_value());
  }
  // Touch line 0 so line 1 becomes LRU.
  std::array<std::uint8_t, 8> buf{};
  ASSERT_TRUE(cache.read(0, buf));
  const auto evicted = cache.fill(4 * 256, pattern_line(4), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line_addr, 256U);  // Line 1 was least recently used.
  EXPECT_FALSE(evicted->dirty);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(256));
}

TEST(Cache, DirtyEvictionCarriesData) {
  Cache cache(tiny_cache());
  (void)cache.fill(0, pattern_line(1), false);
  const std::array<std::uint8_t, 8> in{0xAA};
  ASSERT_TRUE(cache.write(0, in));
  for (std::uint64_t i = 1; i < 4; ++i) {
    (void)cache.fill(i * 256, pattern_line(std::uint8_t(i)), false);
  }
  const auto evicted = cache.fill(4 * 256, pattern_line(9), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line_addr, 0U);
  EXPECT_TRUE(evicted->dirty);
  EXPECT_EQ(evicted->data[0], 0xAA);
  EXPECT_EQ(cache.stats().dirty_writebacks, 1U);
}

TEST(Cache, RefillExistingLineNoEviction) {
  Cache cache(tiny_cache());
  (void)cache.fill(0, pattern_line(1), false);
  EXPECT_FALSE(cache.fill(0, pattern_line(2), false).has_value());
  EXPECT_EQ(cache.resident_lines(), 1U);
  std::array<std::uint8_t, 8> buf{};
  ASSERT_TRUE(cache.read(0, buf));
  EXPECT_EQ(buf[0], 2);
}

TEST(Cache, InvalidateMissingLineIsNoop) {
  Cache cache(tiny_cache());
  EXPECT_FALSE(cache.invalidate(0x500).has_value());
  EXPECT_EQ(cache.stats().invalidations, 0U);
}

TEST(Cache, ClearDropsEverything) {
  Cache cache(tiny_cache());
  (void)cache.fill(0, pattern_line(1), true);
  cache.clear();
  EXPECT_EQ(cache.resident_lines(), 0U);
  EXPECT_FALSE(cache.contains(0));
}

TEST(Cache, LineOfMasksOffset) {
  Cache cache(tiny_cache());
  EXPECT_EQ(cache.line_of(0x13F), 0x100U);
  EXPECT_EQ(cache.line_of(0x140), 0x140U);
}

}  // namespace
}  // namespace hmcsim::host
