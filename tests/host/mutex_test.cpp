// mutex_test.cpp — Algorithm 1 / Table V semantics and the paper's
// headline experiment properties.
#include "src/host/mutex_driver.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "plugins/builtin.h"
#include "src/sim/stats_report.hpp"

namespace hmcsim::host {
namespace {

void register_mutex_ops(sim::Simulator& sim) {
  ASSERT_TRUE(sim.register_cmc(hmcsim_builtin_lock_register,
                               hmcsim_builtin_lock_execute,
                               hmcsim_builtin_lock_str).ok());
  ASSERT_TRUE(sim.register_cmc(hmcsim_builtin_trylock_register,
                               hmcsim_builtin_trylock_execute,
                               hmcsim_builtin_trylock_str).ok());
  ASSERT_TRUE(sim.register_cmc(hmcsim_builtin_unlock_register,
                               hmcsim_builtin_unlock_execute,
                               hmcsim_builtin_unlock_str).ok());
}

std::unique_ptr<sim::Simulator> make_sim(const sim::Config& cfg) {
  std::unique_ptr<sim::Simulator> sim;
  EXPECT_TRUE(sim::Simulator::create(cfg, sim).ok());
  register_mutex_ops(*sim);
  return sim;
}

// ---- direct operation semantics (through the full pipeline) ---------------

class MutexOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = make_sim(sim::Config::hmc_4link_4gb());
  }

  sim::Response op(spec::Rqst rqst, std::uint64_t tid) {
    const std::array<std::uint64_t, 2> payload{tid, 0};
    spec::RqstParams p;
    p.rqst = rqst;
    p.addr = kLock;
    p.payload = payload;
    EXPECT_TRUE(sim_->send(p, 0).ok());
    while (!sim_->rsp_ready(0)) {
      sim_->clock();
    }
    sim::Response rsp;
    EXPECT_TRUE(sim_->recv(0, rsp).ok());
    return rsp;
  }

  std::array<std::uint64_t, 2> lock_struct() {
    std::array<std::uint64_t, 2> out{};
    EXPECT_TRUE(sim_->device(0).store().read_u128(kLock, out).ok());
    return out;
  }

  static constexpr std::uint64_t kLock = 0x4000;
  std::unique_ptr<sim::Simulator> sim_;
};

TEST_F(MutexOpTest, LockAcquiresFreeLock) {
  const sim::Response rsp = op(spec::Rqst::CMC125, 7);
  EXPECT_EQ(rsp.pkt.payload()[0], 1ULL);
  EXPECT_EQ(lock_struct()[0], 1ULL);  // Figure 4: lock word.
  EXPECT_EQ(lock_struct()[1], 7ULL);  // Figure 4: owner TID.
}

TEST_F(MutexOpTest, LockFailsOnHeldLockWithoutModification) {
  (void)op(spec::Rqst::CMC125, 7);
  const sim::Response rsp = op(spec::Rqst::CMC125, 9);
  EXPECT_EQ(rsp.pkt.payload()[0], 0ULL);
  EXPECT_EQ(lock_struct()[1], 7ULL);  // Owner unchanged.
}

TEST_F(MutexOpTest, TrylockAcquiresAndReturnsOwnTid) {
  const sim::Response rsp = op(spec::Rqst::CMC126, 5);
  EXPECT_EQ(rsp.pkt.payload()[0], 5ULL);  // Owner after the attempt.
  EXPECT_EQ(lock_struct()[0], 1ULL);
}

TEST_F(MutexOpTest, TrylockOnHeldLockReturnsHolder) {
  (void)op(spec::Rqst::CMC125, 7);
  const sim::Response rsp = op(spec::Rqst::CMC126, 9);
  EXPECT_EQ(rsp.pkt.payload()[0], 7ULL);  // The holder, not 9.
  EXPECT_EQ(lock_struct()[1], 7ULL);
}

TEST_F(MutexOpTest, UnlockByOwnerSucceeds) {
  (void)op(spec::Rqst::CMC125, 7);
  const sim::Response rsp = op(spec::Rqst::CMC127, 7);
  EXPECT_EQ(rsp.pkt.payload()[0], 1ULL);
  EXPECT_EQ(lock_struct()[0], 0ULL);  // Free again.
}

TEST_F(MutexOpTest, UnlockByNonOwnerFails) {
  (void)op(spec::Rqst::CMC125, 7);
  const sim::Response rsp = op(spec::Rqst::CMC127, 9);
  EXPECT_EQ(rsp.pkt.payload()[0], 0ULL);
  EXPECT_EQ(lock_struct()[0], 1ULL);  // Still held by 7.
  EXPECT_EQ(lock_struct()[1], 7ULL);
}

TEST_F(MutexOpTest, UnlockOfFreeLockFails) {
  const sim::Response rsp = op(spec::Rqst::CMC127, 7);
  EXPECT_EQ(rsp.pkt.payload()[0], 0ULL);
}

TEST_F(MutexOpTest, LockAfterUnlockByNewOwner) {
  (void)op(spec::Rqst::CMC125, 7);
  (void)op(spec::Rqst::CMC127, 7);
  const sim::Response rsp = op(spec::Rqst::CMC125, 9);
  EXPECT_EQ(rsp.pkt.payload()[0], 1ULL);
  EXPECT_EQ(lock_struct()[1], 9ULL);
}

TEST_F(MutexOpTest, ResponseCommandsMatchTableV) {
  sim::Response rsp = op(spec::Rqst::CMC125, 1);
  EXPECT_EQ(rsp.pkt.cmd(), 0x39);  // WR_RS.
  rsp = op(spec::Rqst::CMC126, 1);
  EXPECT_EQ(rsp.pkt.cmd(), 0x38);  // RD_RS.
  rsp = op(spec::Rqst::CMC127, 1);
  EXPECT_EQ(rsp.pkt.cmd(), 0x39);  // WR_RS.
}

// ---- Algorithm 1 driver ------------------------------------------------------

TEST(MutexDriver, RequiresRegisteredOps) {
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(
      sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
  MutexResult result;
  EXPECT_EQ(run_mutex_contention(*sim, 4, {}, result).code(),
            StatusCode::InvalidState);
}

TEST(MutexDriver, RejectsBadArguments) {
  auto sim = make_sim(sim::Config::hmc_4link_4gb());
  MutexResult result;
  EXPECT_FALSE(run_mutex_contention(*sim, 0, {}, result).ok());
  MutexOptions unaligned;
  unaligned.lock_addr = 0x4001;
  EXPECT_FALSE(run_mutex_contention(*sim, 2, unaligned, result).ok());
}

TEST(MutexDriver, SingleThreadCompletesInSixCycles) {
  // MIN_CYCLE == 6 (Table VI): one lock round trip + one unlock round trip.
  auto sim = make_sim(sim::Config::hmc_4link_4gb());
  MutexResult result;
  ASSERT_TRUE(run_mutex_contention(*sim, 1, {}, result).ok());
  EXPECT_EQ(result.min_cycles, 6U);
  EXPECT_EQ(result.max_cycles, 6U);
  EXPECT_DOUBLE_EQ(result.avg_cycles, 6.0);
  EXPECT_EQ(result.trylock_attempts, 0U);
  EXPECT_EQ(result.lock_failures, 0U);
}

TEST(MutexDriver, EveryThreadCompletes) {
  auto sim = make_sim(sim::Config::hmc_4link_4gb());
  MutexResult result;
  ASSERT_TRUE(run_mutex_contention(*sim, 32, {}, result).ok());
  EXPECT_EQ(result.per_thread_cycles.size(), 32U);
  for (const std::uint64_t c : result.per_thread_cycles) {
    EXPECT_GE(c, 6U);
  }
  EXPECT_EQ(result.lock_failures, 31U);  // Exactly one initial winner.
  EXPECT_GE(result.trylock_attempts, 31U);
}

TEST(MutexDriver, LockIsFreeAfterRun) {
  auto sim = make_sim(sim::Config::hmc_4link_4gb());
  MutexOptions opts;
  opts.lock_addr = 0x8000;
  MutexResult result;
  ASSERT_TRUE(run_mutex_contention(*sim, 16, opts, result).ok());
  std::array<std::uint64_t, 2> lock{};
  ASSERT_TRUE(sim->device(0).store().read_u128(0x8000, lock).ok());
  EXPECT_EQ(lock[0], 0ULL);
}

TEST(MutexDriver, MutualExclusionHolds) {
  // Property: at most one thread may ever hold the lock. If exclusion were
  // violated, two threads would unlock successfully without a matching
  // handoff, or an unlock would fail. The driver treats every thread's
  // unlock as phase-terminal, so a violated invariant shows up as a
  // watchdog timeout or a lock left held; both are checked here, across
  // several contention levels.
  for (const std::uint32_t threads : {2U, 8U, 24U, 64U}) {
    auto sim = make_sim(sim::Config::hmc_4link_4gb());
    MutexResult result;
    ASSERT_TRUE(run_mutex_contention(*sim, threads, {}, result).ok())
        << threads;
    std::array<std::uint64_t, 2> lock{};
    ASSERT_TRUE(sim->device(0).store().read_u128(0, lock).ok());
    EXPECT_EQ(lock[0], 0ULL) << threads;
  }
}

TEST(MutexDriver, DeterministicAcrossRuns) {
  MutexResult a;
  MutexResult b;
  {
    auto sim = make_sim(sim::Config::hmc_4link_4gb());
    ASSERT_TRUE(run_mutex_contention(*sim, 20, {}, a).ok());
  }
  {
    auto sim = make_sim(sim::Config::hmc_4link_4gb());
    ASSERT_TRUE(run_mutex_contention(*sim, 20, {}, b).ok());
  }
  EXPECT_EQ(a.per_thread_cycles, b.per_thread_cycles);
  EXPECT_EQ(a.trylock_attempts, b.trylock_attempts);
}

TEST(MutexDriver, FourAndEightLinkIdenticalAtLowThreadCounts) {
  // The paper: "minimum, maximum and average HMC-Sim cycle counts are
  // actually identical between both the 4Link and 8Link device
  // configurations for thread counts from two to fifty."
  for (const std::uint32_t threads : {2U, 10U, 25U, 50U}) {
    MutexResult r4;
    MutexResult r8;
    {
      auto sim = make_sim(sim::Config::hmc_4link_4gb());
      ASSERT_TRUE(run_mutex_contention(*sim, threads, {}, r4).ok());
    }
    {
      auto sim = make_sim(sim::Config::hmc_8link_8gb());
      ASSERT_TRUE(run_mutex_contention(*sim, threads, {}, r8).ok());
    }
    EXPECT_EQ(r4.min_cycles, r8.min_cycles) << threads;
    EXPECT_EQ(r4.max_cycles, r8.max_cycles) << threads;
    EXPECT_DOUBLE_EQ(r4.avg_cycles, r8.avg_cycles) << threads;
  }
}

TEST(MutexDriver, MinCycleIsSixOnBothConfigs) {
  for (const auto& cfg :
       {sim::Config::hmc_4link_4gb(), sim::Config::hmc_8link_8gb()}) {
    auto sim = make_sim(cfg);
    MutexResult result;
    ASSERT_TRUE(run_mutex_contention(*sim, 40, {}, result).ok());
    EXPECT_EQ(result.min_cycles, 6U);
  }
}

TEST(MutexDriver, EightLinkNoWorseThanFourLinkAtHighThreadCounts) {
  // Beyond ~50 threads the 8-link device's extra queueing capacity gives
  // it a small edge (paper Figs. 5-7, Table VI).
  MutexResult r4;
  MutexResult r8;
  {
    auto sim = make_sim(sim::Config::hmc_4link_4gb());
    ASSERT_TRUE(run_mutex_contention(*sim, 99, {}, r4).ok());
  }
  {
    auto sim = make_sim(sim::Config::hmc_8link_8gb());
    ASSERT_TRUE(run_mutex_contention(*sim, 99, {}, r8).ok());
  }
  EXPECT_LE(r8.max_cycles, r4.max_cycles);
  EXPECT_LE(r8.avg_cycles, r4.avg_cycles);
  EXPECT_LT(r8.avg_cycles, r4.avg_cycles);  // Strictly better on average.
}

TEST(MutexDriver, MultiLockValidatesOptions) {
  auto sim = make_sim(sim::Config::hmc_4link_4gb());
  MutexResult result;
  MutexOptions opts;
  opts.num_locks = 0;
  EXPECT_FALSE(run_mutex_contention(*sim, 4, opts, result).ok());
  opts = MutexOptions{};
  opts.lock_stride = 24;  // Not 16-byte aligned.
  EXPECT_FALSE(run_mutex_contention(*sim, 4, opts, result).ok());
}

TEST(MutexDriver, MultiLockAllLocksEndFree) {
  auto sim = make_sim(sim::Config::hmc_4link_4gb());
  MutexOptions opts;
  opts.lock_addr = 0x4000;
  opts.num_locks = 8;
  MutexResult result;
  ASSERT_TRUE(run_mutex_contention(*sim, 32, opts, result).ok());
  for (std::uint32_t l = 0; l < 8; ++l) {
    std::array<std::uint64_t, 2> lock{};
    ASSERT_TRUE(sim->device(0)
                    .store()
                    .read_u128(0x4000 + 64ULL * l, lock)
                    .ok());
    EXPECT_EQ(lock[0], 0ULL) << "lock " << l;
  }
}

TEST(MutexDriver, SpreadingLocksRelievesTheHotSpot) {
  // The paper attributes the scaling behaviour to the single-lock hot
  // spot; with one lock per contending pair, completion time collapses.
  MutexResult single;
  MutexResult spread;
  {
    auto sim = make_sim(sim::Config::hmc_4link_4gb());
    MutexOptions opts;
    opts.lock_addr = 0x4000;
    ASSERT_TRUE(run_mutex_contention(*sim, 64, opts, single).ok());
  }
  {
    auto sim = make_sim(sim::Config::hmc_4link_4gb());
    MutexOptions opts;
    opts.lock_addr = 0x4000;
    opts.num_locks = 32;  // Two threads per lock, spread over 32 vaults.
    ASSERT_TRUE(run_mutex_contention(*sim, 64, opts, spread).ok());
  }
  EXPECT_LT(spread.max_cycles, single.max_cycles / 4);
  EXPECT_LT(spread.avg_cycles, single.avg_cycles / 4);
}

TEST(MutexDriver, BackoffIsIdenticalAcrossClockSchedulers) {
  // Spin-wait with backoff leaves whole spans with every queue empty;
  // the active scheduler jumps them with clock_until while the exhaustive
  // walk steps each cycle. Both must simulate the identical run.
  MutexOptions opts;
  opts.lock_addr = 0x4000;
  opts.trylock_backoff = 100;
  MutexResult golden;
  MutexResult active;
  std::string golden_stats;
  std::string active_stats;
  {
    sim::Config cfg = sim::Config::hmc_4link_4gb();
    cfg.exhaustive_clock = true;
    auto sim = make_sim(cfg);
    ASSERT_TRUE(run_mutex_contention(*sim, 16, opts, golden).ok());
    golden_stats = sim::format_stats_json(*sim);
  }
  {
    auto sim = make_sim(sim::Config::hmc_4link_4gb());
    ASSERT_TRUE(run_mutex_contention(*sim, 16, opts, active).ok());
    active_stats = sim::format_stats_json(*sim);
  }
  EXPECT_EQ(golden.per_thread_cycles, active.per_thread_cycles);
  EXPECT_EQ(golden.total_cycles, active.total_cycles);
  EXPECT_EQ(golden.trylock_attempts, active.trylock_attempts);
  EXPECT_EQ(golden.lock_failures, active.lock_failures);
  EXPECT_EQ(golden.send_retries, active.send_retries);
  EXPECT_EQ(golden_stats, active_stats);
  EXPECT_EQ(golden.fast_forwarded, 0U);
  EXPECT_GT(active.fast_forwarded, 0U);
  // The backoff dominates the run: most cycles are jumped, not stepped.
  EXPECT_GT(active.fast_forwarded, active.total_cycles / 2);
}

TEST(MutexDriver, ScalesRoughlyLinearlyWithThreads) {
  auto sim = make_sim(sim::Config::hmc_4link_4gb());
  MutexResult r20;
  ASSERT_TRUE(run_mutex_contention(*sim, 20, {}, r20).ok());
  auto sim2 = make_sim(sim::Config::hmc_4link_4gb());
  MutexResult r80;
  ASSERT_TRUE(run_mutex_contention(*sim2, 80, {}, r80).ok());
  // One lock handoff per thread: max grows ~4x for 4x the threads.
  EXPECT_GT(r80.max_cycles, 3 * r20.max_cycles);
  EXPECT_LT(r80.max_cycles, 6 * r20.max_cycles);
}

}  // namespace
}  // namespace hmcsim::host
