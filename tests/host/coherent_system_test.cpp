// coherent_system_test.cpp — multi-core coherence and the spinlock driver.
#include "src/host/cache/coherent_system.hpp"
#include "src/sim/sim_stats.hpp"

#include <gtest/gtest.h>

#include "src/host/cache/spinlock_driver.hpp"

namespace hmcsim::host {
namespace {

class CoherentSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim_).ok());
  }

  /// Run one operation to completion on `core` and return its result.
  CoreCompletion run_op(CoherentSystem& sys, std::uint32_t core,
                        const CoreRequest& req) {
    Status s = sys.issue(core, req);
    int guard = 0;
    while (s.stalled() && guard++ < 1000) {
      sys.step({});
      s = sys.issue(core, req);
    }
    EXPECT_TRUE(s.ok()) << s.to_string();
    CoreCompletion out;
    bool done = false;
    guard = 0;
    while (!done && guard++ < 1000) {
      sys.step([&](const CoreCompletion& c) {
        if (c.core == core) {
          out = c;
          done = true;
        }
      });
    }
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<sim::Simulator> sim_;
};

TEST_F(CoherentSystemTest, LoadMissFillsFromCube) {
  ASSERT_TRUE(sim_->device(0).store().write_u64(0x1000, 0xBEEF).ok());
  CoherentSystem sys(*sim_, 2, CacheConfig{});
  const CoreCompletion c =
      run_op(sys, 0, {MemOp::Load, 0x1000, 0, 0});
  EXPECT_EQ(c.value, 0xBEEFULL);
  EXPECT_EQ(sys.stats().fills, 1U);
  EXPECT_TRUE(sys.cache(0).contains(0x1000));
}

TEST_F(CoherentSystemTest, SecondLoadHitsLocally) {
  CoherentSystem sys(*sim_, 1, CacheConfig{});
  (void)run_op(sys, 0, {MemOp::Load, 0x1000, 0, 0});
  const auto flits_before = sim::collect_stats(*sim_).rqst_flits;
  (void)run_op(sys, 0, {MemOp::Load, 0x1008, 0, 0});  // Same line.
  EXPECT_EQ(sim::collect_stats(*sim_).rqst_flits, flits_before);
  EXPECT_EQ(sys.stats().cache_hit_ops, 1U);
}

TEST_F(CoherentSystemTest, StoreVisibleToOtherCoreThroughMemory) {
  CoherentSystem sys(*sim_, 2, CacheConfig{});
  (void)run_op(sys, 0, {MemOp::Store, 0x2000, 77, 0});
  // Core 0 holds the line dirty; core 1's load forces the downgrade
  // through the cube.
  const CoreCompletion c = run_op(sys, 1, {MemOp::Load, 0x2000, 0, 0});
  EXPECT_EQ(c.value, 77ULL);
  EXPECT_EQ(sys.stats().ownership_writebacks, 1U);
  // The value reached the cube itself (memory-reflected transfer).
  std::uint64_t mem = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x2000, mem).ok());
  EXPECT_EQ(mem, 77ULL);
}

TEST_F(CoherentSystemTest, ExclusiveStoreInvalidatesSharers) {
  CoherentSystem sys(*sim_, 3, CacheConfig{});
  (void)run_op(sys, 0, {MemOp::Load, 0x3000, 0, 0});
  (void)run_op(sys, 1, {MemOp::Load, 0x3000, 0, 0});
  EXPECT_TRUE(sys.cache(0).contains(0x3000));
  EXPECT_TRUE(sys.cache(1).contains(0x3000));
  (void)run_op(sys, 2, {MemOp::Store, 0x3000, 5, 0});
  EXPECT_FALSE(sys.cache(0).contains(0x3000));
  EXPECT_FALSE(sys.cache(1).contains(0x3000));
  EXPECT_EQ(sys.stats().invalidations_sent, 2U);
}

TEST_F(CoherentSystemTest, CasSemantics) {
  CoherentSystem sys(*sim_, 1, CacheConfig{});
  CoreCompletion c = run_op(sys, 0, {MemOp::Cas, 0x4000, 1, 0});
  EXPECT_TRUE(c.cas_success);  // 0 -> 1.
  EXPECT_EQ(c.value, 0ULL);
  c = run_op(sys, 0, {MemOp::Cas, 0x4000, 2, 0});
  EXPECT_FALSE(c.cas_success);  // Now 1, expected 0.
  EXPECT_EQ(c.value, 1ULL);
}

TEST_F(CoherentSystemTest, ContendedCasExactlyOneWinner) {
  constexpr std::uint32_t kCores = 8;
  CoherentSystem sys(*sim_, kCores, CacheConfig{});
  std::vector<bool> issued(kCores, false);
  std::vector<bool> decided(kCores, false);
  std::uint32_t winners = 0;
  std::uint32_t done = 0;
  int guard = 0;
  while (done < kCores && guard++ < 20000) {
    for (std::uint32_t core = 0; core < kCores; ++core) {
      if (!issued[core] && !decided[core]) {
        const Status s = sys.issue(core, {MemOp::Cas, 0x5000, 1, 0});
        if (s.ok()) {
          issued[core] = true;
        }
      }
    }
    sys.step([&](const CoreCompletion& c) {
      decided[c.core] = true;
      issued[c.core] = false;
      winners += c.cas_success ? 1 : 0;
      ++done;
    });
  }
  ASSERT_EQ(done, kCores);
  EXPECT_EQ(winners, 1U);  // Mutual exclusion at the CAS level.
}

TEST_F(CoherentSystemTest, BusyLineNacks) {
  CoherentSystem sys(*sim_, 2, CacheConfig{});
  // Core 0 starts a missing store (transaction in flight).
  ASSERT_TRUE(sys.issue(0, {MemOp::Store, 0x6000, 1, 0}).ok());
  const Status s = sys.issue(1, {MemOp::Store, 0x6000, 2, 0});
  EXPECT_TRUE(s.stalled());
  EXPECT_GT(sys.stats().nacks, 0U);
}

TEST_F(CoherentSystemTest, CoreBusyRejected) {
  CoherentSystem sys(*sim_, 1, CacheConfig{});
  ASSERT_TRUE(sys.issue(0, {MemOp::Load, 0x7000, 0, 0}).ok());
  EXPECT_EQ(sys.issue(0, {MemOp::Load, 0x8000, 0, 0}).code(),
            StatusCode::InvalidState);
}

TEST_F(CoherentSystemTest, MisalignedRejected) {
  CoherentSystem sys(*sim_, 1, CacheConfig{});
  EXPECT_FALSE(sys.issue(0, {MemOp::Load, 0x7001, 0, 0}).ok());
  EXPECT_FALSE(sys.issue(2, {MemOp::Load, 0x7000, 0, 0}).ok());
}

TEST_F(CoherentSystemTest, CapacityEvictionWritesBack) {
  CacheConfig tiny;
  tiny.size_bytes = 256;  // 1 set x 4 ways? 256/(64*?)... use 4 lines.
  tiny.line_bytes = 64;
  tiny.ways = 4;
  CoherentSystem sys(*sim_, 1, tiny);
  // Dirty 5 distinct lines in the same (single) set: forces a dirty
  // eviction through the cube.
  for (std::uint64_t i = 0; i < 5; ++i) {
    (void)run_op(sys, 0, {MemOp::Store, i * 64, 100 + i, 0});
  }
  EXPECT_GT(sys.stats().victim_writebacks, 0U);
  // The evicted line's value is recoverable from the cube.
  std::uint64_t mem = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0, mem).ok());
  EXPECT_EQ(mem, 100ULL);
}

// ---- spinlock driver -------------------------------------------------------

TEST_F(CoherentSystemTest, SpinlockSingleCore) {
  SpinlockResult result;
  ASSERT_TRUE(
      run_spinlock_contention(*sim_, 1, SpinlockOptions{}, result).ok());
  EXPECT_EQ(result.cas_attempts, 1U);
  EXPECT_GT(result.min_cycles, 0U);
  // Lock released at the end.
  std::uint64_t v = 1;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x4000, v).ok());
  // The release may still live dirty in the core's cache; the cache value
  // is authoritative. Verify through the cache-aware invariant instead:
  // the run completed, so the store applied.
  EXPECT_EQ(result.per_core_cycles.size(), 1U);
}

TEST_F(CoherentSystemTest, SpinlockAllCoresComplete) {
  SpinlockResult result;
  ASSERT_TRUE(
      run_spinlock_contention(*sim_, 8, SpinlockOptions{}, result).ok());
  EXPECT_EQ(result.cores, 8U);
  EXPECT_GE(result.cas_attempts, 8U);
  EXPECT_GT(result.line_bounces, 0U);  // The lock line ping-ponged.
  for (const std::uint64_t c : result.per_core_cycles) {
    EXPECT_GT(c, 0U);
  }
  EXPECT_GE(result.max_cycles, result.min_cycles);
}

TEST_F(CoherentSystemTest, SpinlockDeterministic) {
  SpinlockResult a;
  ASSERT_TRUE(
      run_spinlock_contention(*sim_, 6, SpinlockOptions{}, a).ok());
  std::unique_ptr<sim::Simulator> sim2;
  ASSERT_TRUE(
      sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim2).ok());
  SpinlockResult b;
  ASSERT_TRUE(
      run_spinlock_contention(*sim2, 6, SpinlockOptions{}, b).ok());
  EXPECT_EQ(a.per_core_cycles, b.per_core_cycles);
  EXPECT_EQ(a.cas_attempts, b.cas_attempts);
}

TEST_F(CoherentSystemTest, SpinlockCostsMoreThanCmcTraffic) {
  // Table II's thesis at system level: the cache path moves more FLITs
  // per lock handoff than the 2+2-FLIT CMC operations.
  SpinlockResult result;
  ASSERT_TRUE(
      run_spinlock_contention(*sim_, 8, SpinlockOptions{}, result).ok());
  const std::uint64_t flits = result.hmc_rqst_flits + result.hmc_rsp_flits;
  EXPECT_GT(flits / 8, 8U);  // Well above one CMC lock+unlock (8 FLITs).
}

}  // namespace
}  // namespace hmcsim::host
