// chrome_trace_test.cpp — schema checks for the Chrome trace-event export.
//
// Parses the emitted document with a minimal JSON reader (array of flat
// records; the only nesting is the "args" object) and checks the trace
// invariants Perfetto relies on: every async "b" has a matching "e" with
// the same id, metadata records name each track before use, and the
// per-stage slice durations reconcile with the span's latency.
#include "src/trace/chrome_sink.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/capi/hmc_sim.h"
#include "src/sim/simulator.hpp"

namespace hmcsim::trace {
namespace {

/// One trace record flattened to dotted keys ("args.tag" etc.). Strings
/// keep their unquoted value; numbers and booleans keep their literal
/// spelling.
using Record = std::map<std::string, std::string>;

class TraceJson {
 public:
  /// Parses a trace-event JSON array; fails the test on malformed input.
  static std::vector<Record> parse(const std::string& text) {
    TraceJson p(text);
    std::vector<Record> records;
    p.skip_ws();
    p.expect('[');
    p.skip_ws();
    if (p.peek() == ']') {
      ++p.pos_;
    } else {
      while (true) {
        Record r;
        p.parse_object("", r);
        records.push_back(std::move(r));
        p.skip_ws();
        if (p.peek() == ',') {
          ++p.pos_;
          p.skip_ws();
          continue;
        }
        p.expect(']');
        break;
      }
    }
    p.skip_ws();
    EXPECT_EQ(p.pos_, p.text_.size()) << "trailing bytes after the array";
    return records;
  }

 private:
  explicit TraceJson(const std::string& text) : text_(text) {}

  void parse_object(const std::string& prefix, Record& out) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (peek() == '{') {
        parse_object(path, out);
      } else if (peek() == '"') {
        out[path] = parse_string();
      } else {
        out[path] = parse_scalar();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        out += text_[pos_ + 1];
        pos_ += 2;
      } else {
        out += text_[pos_++];
      }
    }
    expect('"');
    return out;
  }

  std::string parse_scalar() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a scalar at offset " << start;
    return text_.substr(start, pos_ - start);
  }

  void expect(char c) {
    ASSERT_LT(pos_, text_.size()) << "unexpected end of document";
    ASSERT_EQ(text_[pos_], c) << "offset " << pos_;
    ++pos_;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::vector<Record> by_ph(const std::vector<Record>& records,
                          const std::string& ph) {
  std::vector<Record> out;
  for (const Record& r : records) {
    if (auto it = r.find("ph"); it != r.end() && it->second == ph) {
      out.push_back(r);
    }
  }
  return out;
}

class ChromeTraceTest : public ::testing::Test {
 protected:
  void make_sim(sim::Config cfg) {
    ASSERT_TRUE(sim::Simulator::create(cfg, sim_).ok());
    sink_ = std::make_unique<ChromeSink>(os_);
    sim_->tracer().attach(sink_.get());
    sim_->journeys().attach(sink_.get());
    sim_->tracer().set_level(sim_->tracer().level() | Level::Journey |
                             Level::Retry | Level::Cmc);
  }

  void roundtrip(std::uint64_t addr, std::uint16_t tag, std::uint32_t link) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = addr;
    rd.tag = tag;
    Status s = sim_->send(rd, link);
    int guard = 0;
    while (s.stalled() && guard++ < 10000) {
      sim_->clock();
      s = sim_->send(rd, link);
    }
    ASSERT_TRUE(s.ok()) << s.to_string();
    guard = 0;
    while (!sim_->rsp_ready(link) && guard++ < 10000) {
      sim_->clock();
    }
    sim::Response rsp;
    ASSERT_TRUE(sim_->recv(link, rsp).ok());
  }

  std::vector<Record> finish_and_parse() {
    sink_->finish();
    return TraceJson::parse(os_.str());
  }

  std::ostringstream os_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<ChromeSink> sink_;
};

TEST(ChromeSinkDocument, EmptyTraceIsAValidArray) {
  std::ostringstream os;
  {
    ChromeSink sink(os);
    sink.finish();
    sink.finish();  // Idempotent.
  }
  EXPECT_TRUE(TraceJson::parse(os.str()).empty());
  EXPECT_EQ(os.str().front(), '[');
}

TEST_F(ChromeTraceTest, SpansBalanceAndTracksAreNamed) {
  make_sim(sim::Config::hmc_4link_4gb());
  for (std::uint16_t i = 0; i < 8; ++i) {
    roundtrip(0x100 + 0x40ULL * i, static_cast<std::uint16_t>(i + 1),
              i % 4U);
  }
  const std::vector<Record> records = finish_and_parse();

  const auto begins = by_ph(records, "b");
  const auto ends = by_ph(records, "e");
  ASSERT_EQ(begins.size(), 8U);
  ASSERT_EQ(ends.size(), 8U);
  // Each "b" pairs with exactly one "e" by async id, on the same track.
  for (const Record& b : begins) {
    int matches = 0;
    for (const Record& e : ends) {
      if (e.at("id") == b.at("id")) {
        ++matches;
        EXPECT_EQ(e.at("pid"), b.at("pid"));
        EXPECT_EQ(e.at("tid"), b.at("tid"));
        EXPECT_EQ(e.at("cat"), "packet");
      }
    }
    EXPECT_EQ(matches, 1) << "id " << b.at("id");
  }

  // Every (pid, tid) used by a span or slice was named by an "M" record.
  std::map<std::string, std::string> track_names;
  bool saw_process_name = false;
  for (const Record& m : by_ph(records, "M")) {
    if (m.at("name") == "process_name") {
      saw_process_name = true;
      EXPECT_EQ(m.at("args.name"), "cube" + m.at("pid"));
    } else {
      ASSERT_EQ(m.at("name"), "thread_name");
      track_names[m.at("pid") + ":" + m.at("tid")] = m.at("args.name");
    }
  }
  EXPECT_TRUE(saw_process_name);
  for (const Record& r : records) {
    if (r.at("ph") == "M") {
      continue;
    }
    EXPECT_TRUE(track_names.contains(r.at("pid") + ":" + r.at("tid")))
        << "unnamed track for ph=" << r.at("ph");
  }
  // All four host links plus at least one vault got a track.
  EXPECT_EQ(track_names.at("0:1"), "link0");
  EXPECT_EQ(track_names.at("0:4"), "link3");

  // Stage slices carry valid names and reconcile with each span's latency.
  for (const Record& x : by_ph(records, "X")) {
    const std::string& name = x.at("name");
    bool known = false;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      known = known || name == to_string(static_cast<Stage>(i));
    }
    EXPECT_TRUE(known) << "unknown stage slice " << name;
  }
  for (const Record& e : ends) {
    std::uint64_t stage_sum = 0;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      stage_sum += std::stoull(
          e.at("args." + std::string(to_string(static_cast<Stage>(i)))));
    }
    EXPECT_EQ(std::to_string(stage_sum), e.at("args.latency"));
    EXPECT_EQ(e.at("args.posted"), "false");
    EXPECT_EQ(e.at("args.error"), "false");
  }
}

TEST_F(ChromeTraceTest, PostedSpanEndsAtTheVault) {
  make_sim(sim::Config::hmc_4link_4gb());
  const std::array<std::uint64_t, 2> data{0xAB, 0xCD};
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::P_WR16;
  wr.addr = 0x900;
  wr.tag = 9;
  wr.payload = data;
  ASSERT_TRUE(sim_->send(wr, 0).ok());
  (void)sim_->clock_until_idle(100);
  const std::vector<Record> records = finish_and_parse();

  const auto ends = by_ph(records, "e");
  ASSERT_EQ(ends.size(), 1U);
  EXPECT_EQ(ends[0].at("args.posted"), "true");
  // Retired at the vault: no response-side stage slices exist.
  for (const Record& x : by_ph(records, "X")) {
    EXPECT_NE(x.at("name"), "rsp_queue");
    EXPECT_NE(x.at("name"), "rsp_path");
  }
}

TEST_F(ChromeTraceTest, LinkRetryEmitsAnInstant) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = 1'000'000;
  make_sim(cfg);
  roundtrip(0x100, 1, 0);
  const std::vector<Record> records = finish_and_parse();

  bool saw_retry = false;
  for (const Record& i : by_ph(records, "i")) {
    if (i.at("name") == "retry") {
      saw_retry = true;
      EXPECT_EQ(i.at("s"), "t");
      EXPECT_EQ(i.at("tid"), "1");  // link0's track.
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(ChromeTraceCapi, FileExportRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/hmcsim_chrome_capi_test.json";
  hmc_sim_t* sim = hmcsim_init(1, 4, 4, 64, 64, 128);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(hmcsim_trace_chrome_file(sim, path.c_str()), HMC_OK);
  ASSERT_EQ(hmcsim_send(sim, 0, HMC_RD16, 0, 0x400, 11, nullptr, 0),
            HMC_OK);
  uint8_t cmd = 0;
  uint16_t tag = 0;
  int rc = HMC_NO_DATA;
  for (int guard = 0; guard < 10000 && rc != HMC_OK; ++guard) {
    (void)hmcsim_clock(sim);
    rc = hmcsim_recv(sim, 0, &cmd, &tag, nullptr, nullptr, nullptr);
  }
  ASSERT_EQ(rc, HMC_OK);
  EXPECT_EQ(tag, 11);
  hmcsim_free(sim);  // Finalises the document.

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::vector<Record> records = TraceJson::parse(buf.str());
  EXPECT_EQ(by_ph(records, "b").size(), 1U);
  EXPECT_EQ(by_ph(records, "e").size(), 1U);
  std::remove(path.c_str());
}

TEST(ChromeTraceCapi, NullPathDetachesAndFinalises) {
  const std::string path =
      ::testing::TempDir() + "/hmcsim_chrome_capi_null.json";
  hmc_sim_t* sim = hmcsim_init(1, 4, 4, 64, 64, 128);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(hmcsim_trace_chrome_file(sim, path.c_str()), HMC_OK);
  ASSERT_EQ(hmcsim_trace_chrome_file(sim, nullptr), HMC_OK);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(TraceJson::parse(buf.str()).empty());
  hmcsim_free(sim);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hmcsim::trace
