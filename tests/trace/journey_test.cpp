// journey_test.cpp — per-packet latency attribution.
//
// The invariant under test everywhere: a retired packet's five stage
// durations sum exactly to its host.latency sample, and the host.stage.*
// histograms reconcile with host.latency in both count and total cycles.
#include "src/trace/journey.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <numeric>
#include <string>

#include "src/sim/simulator.hpp"
#include "src/sim/stats_report.hpp"

namespace hmcsim::trace {
namespace {

std::uint64_t stage_sum(const Journey& j) {
  const auto d = j.stage_durations();
  return std::accumulate(d.begin(), d.end(), std::uint64_t{0});
}

class JourneySimTest : public ::testing::Test {
 protected:
  void make_sim(sim::Config cfg) {
    ASSERT_TRUE(sim::Simulator::create(cfg, sim_).ok());
  }

  void enable_journeys() {
    sim_->tracer().set_level(sim_->tracer().level() | Level::Journey);
    sim_->journeys().attach(&sink_);
  }

  /// Send (retrying stalls) and wait for the response on `link`.
  sim::Response roundtrip(const spec::RqstParams& params,
                          std::uint32_t link = 0) {
    Status s = sim_->send(params, link);
    int guard = 0;
    while (s.stalled() && guard++ < 10000) {
      sim_->clock();
      s = sim_->send(params, link);
    }
    EXPECT_TRUE(s.ok()) << s.to_string();
    sim::Response rsp;
    guard = 0;
    while (!sim_->rsp_ready(link) && guard++ < 10000) {
      sim_->clock();
    }
    EXPECT_TRUE(sim_->recv(link, rsp).ok());
    return rsp;
  }

  const metrics::Histogram* stage_hist(Stage stage) const {
    return sim_->metrics().find_histogram(
        "host.stage." + std::string(to_string(stage)));
  }

  std::unique_ptr<sim::Simulator> sim_;
  JourneySink sink_;
};

TEST(JourneyRecord, StageDurationsTelescope) {
  Journey j;
  j.t_send = 10;
  j.t_vault = 13;
  j.t_service = 20;
  j.t_rsp = 21;
  j.t_eject = 30;
  j.t_retire = 31;
  const auto d = j.stage_durations();
  EXPECT_EQ(d[0], 3U);   // link_ingress
  EXPECT_EQ(d[1], 7U);   // vault_queue
  EXPECT_EQ(d[2], 1U);   // bank_service
  EXPECT_EQ(d[3], 9U);   // rsp_queue
  EXPECT_EQ(d[4], 1U);   // rsp_path
  EXPECT_EQ(stage_sum(j), j.t_retire - j.t_send);
}

TEST(JourneyRecord, MissingStampsContributeZero) {
  // A posted packet never reaches the response stages; the sum still
  // telescopes to the last stamp it did reach.
  Journey j;
  j.t_send = 5;
  j.t_vault = 8;
  j.t_service = 9;
  j.t_rsp = 9;
  j.posted = true;
  const auto d = j.stage_durations();
  EXPECT_EQ(d[3], 0U);
  EXPECT_EQ(d[4], 0U);
  EXPECT_EQ(stage_sum(j), 4U);
  EXPECT_TRUE(j.completed());
}

TEST(JourneyTrackerPool, SlotsAreRecycled) {
  JourneyTracker tracker;
  const std::uint32_t a = tracker.open(1, 0, 0, 1, "RD16", 0x10);
  const std::uint32_t b = tracker.open(1, 0, 1, 2, "WR16", 0x20);
  EXPECT_NE(a, b);
  EXPECT_EQ(tracker.in_flight(), 2U);
  tracker.complete(a);
  EXPECT_EQ(tracker.in_flight(), 1U);
  // The freed slot is reused; its serial keeps advancing.
  const std::uint32_t c = tracker.open(2, 0, 2, 3, "RD32", 0x30);
  EXPECT_EQ(c, a);
  EXPECT_EQ(tracker.at(c).serial, 2U);
  EXPECT_EQ(tracker.opened(), 3U);
  EXPECT_EQ(tracker.completed(), 1U);
}

TEST(JourneyTrackerPool, DropSkipsObservers) {
  JourneyTracker tracker;
  JourneySink sink;
  tracker.attach(&sink);
  const std::uint32_t idx = tracker.open(1, 0, 0, 1, "RD16", 0x10);
  tracker.drop(idx);
  EXPECT_TRUE(sink.journeys().empty());
  EXPECT_EQ(tracker.in_flight(), 0U);
  tracker.drop(idx);  // Double-drop is harmless.
  EXPECT_EQ(tracker.in_flight(), 0U);
}

TEST_F(JourneySimTest, StageSumEqualsLatencyPerPacket) {
  make_sim(sim::Config::hmc_4link_4gb());
  enable_journeys();
  for (std::uint32_t i = 0; i < 32; ++i) {
    spec::RqstParams rd;
    rd.rqst = i % 2 == 0 ? spec::Rqst::RD16 : spec::Rqst::RD64;
    rd.addr = 0x100 + 0x40ULL * i;
    rd.tag = static_cast<std::uint16_t>(i + 1);
    const sim::Response rsp = roundtrip(rd, i % 4);
    ASSERT_FALSE(sink_.journeys().empty());
    const Journey& j = sink_.journeys().back();
    EXPECT_EQ(j.tag, rsp.pkt.tag());
    EXPECT_EQ(stage_sum(j), rsp.latency) << "packet " << i;
    EXPECT_EQ(j.t_retire - j.t_send, rsp.latency);
    EXPECT_FALSE(j.posted);
    EXPECT_FALSE(j.error);
  }
  EXPECT_EQ(sink_.journeys().size(), 32U);
  EXPECT_EQ(sim_->journeys().in_flight(), 0U);
}

TEST_F(JourneySimTest, StageHistogramsReconcileWithHostLatency) {
  make_sim(sim::Config::hmc_4link_4gb());
  enable_journeys();
  for (std::uint32_t i = 0; i < 24; ++i) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD64;
    rd.addr = 0x40ULL * i;
    rd.tag = static_cast<std::uint16_t>(i + 1);
    (void)roundtrip(rd, i % 4);
  }
  const metrics::Histogram& total = sim_->latency_histogram();
  ASSERT_EQ(total.count(), 24U);
  std::uint64_t stage_cycles = 0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const metrics::Histogram* h = stage_hist(static_cast<Stage>(i));
    ASSERT_NE(h, nullptr);
    // Every retired packet contributes one sample to every stage.
    EXPECT_EQ(h->count(), total.count());
    stage_cycles += h->sum();
  }
  EXPECT_EQ(stage_cycles, total.sum());
}

TEST_F(JourneySimTest, PostedCommandsCompleteAtVaultAndSkipHistograms) {
  make_sim(sim::Config::hmc_4link_4gb());
  enable_journeys();
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::P_WR16;
  wr.addr = 0x900;
  wr.tag = 7;
  std::array<std::uint64_t, 2> data{0xAB, 0xCD};
  wr.payload = {data.data(), 2};
  ASSERT_TRUE(sim_->send(wr, 0).ok());
  (void)sim_->clock_until_idle(100);

  ASSERT_EQ(sink_.journeys().size(), 1U);
  const Journey& j = sink_.journeys().back();
  EXPECT_TRUE(j.posted);
  EXPECT_TRUE(j.completed());
  EXPECT_EQ(j.t_retire, kNoCycle);
  EXPECT_EQ(stage_sum(j), j.t_rsp - j.t_send);
  // No response retired at the host: the stage histograms hold no sample,
  // keeping their counts equal to host.latency's.
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const metrics::Histogram* h = stage_hist(static_cast<Stage>(i));
    if (h != nullptr) {
      EXPECT_EQ(h->count(), 0U);
    }
  }
  EXPECT_EQ(sim_->latency_histogram().count(), 0U);
  EXPECT_EQ(sim_->journeys().in_flight(), 0U);
}

TEST_F(JourneySimTest, DisabledTracingRegistersNoStageStats) {
  make_sim(sim::Config::hmc_4link_4gb());
  // No Journey level: packets carry kNoJourney and nothing registers.
  for (std::uint32_t i = 0; i < 8; ++i) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0x40ULL * i;
    rd.tag = static_cast<std::uint16_t>(i + 1);
    (void)roundtrip(rd);
  }
  EXPECT_EQ(sim_->journeys().opened(), 0U);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(stage_hist(static_cast<Stage>(i)), nullptr);
  }
  // The export nests dotted paths, so the stage histograms would appear
  // as a "stage" object holding "link_ingress" etc. — neither may exist.
  const std::string json = sim::format_stats_json(*sim_);
  EXPECT_EQ(json.find("link_ingress"), std::string::npos);
  EXPECT_EQ(json.find("\"stage\""), std::string::npos);
}

TEST_F(JourneySimTest, StageStatsConfigRegistersEagerly) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.stage_stats = true;
  make_sim(cfg);
  // Histograms exist before any traffic, and journeys open without any
  // explicit trace-level call.
  for (std::size_t i = 0; i < kStageCount; ++i) {
    ASSERT_NE(stage_hist(static_cast<Stage>(i)), nullptr);
    EXPECT_EQ(stage_hist(static_cast<Stage>(i))->count(), 0U);
  }
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  rd.tag = 1;
  const sim::Response rsp = roundtrip(rd);
  std::uint64_t stage_cycles = 0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(stage_hist(static_cast<Stage>(i))->count(), 1U);
    stage_cycles += stage_hist(static_cast<Stage>(i))->sum();
  }
  EXPECT_EQ(stage_cycles, rsp.latency);
}

TEST_F(JourneySimTest, BankConflictDelayLandsInBankService) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.model_bank_conflicts = true;
  cfg.bank_busy_cycles = 16;
  make_sim(cfg);
  enable_journeys();
  // Two reads of the same address: the second finds the bank busy and is
  // deferred — the wait accrues to its bank_service stage.
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  rd.tag = 1;
  ASSERT_TRUE(sim_->send(rd, 0).ok());
  rd.tag = 2;
  ASSERT_TRUE(sim_->send(rd, 0).ok());
  (void)sim_->clock_until_idle(1000);
  sim::Response rsp;
  while (sim_->rsp_ready(0)) {
    ASSERT_TRUE(sim_->recv(0, rsp).ok());
  }
  ASSERT_EQ(sink_.journeys().size(), 2U);
  const Journey& second = sink_.journeys()[1];
  const auto d = second.stage_durations();
  EXPECT_GT(d[static_cast<std::size_t>(Stage::BankService)], 0U);
  EXPECT_EQ(stage_sum(second), second.t_retire - second.t_send);
}

TEST_F(JourneySimTest, ErrorResponsesAreFlagged) {
  make_sim(sim::Config::hmc_4link_4gb());
  enable_journeys();
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::CMC44;  // No CMC registered: RSP_ERROR.
  rd.flits_override = 2;
  rd.addr = 0x100;
  rd.tag = 3;
  const sim::Response rsp = roundtrip(rd);
  EXPECT_EQ(rsp.pkt.cmd(),
            static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR));
  ASSERT_EQ(sink_.journeys().size(), 1U);
  EXPECT_TRUE(sink_.journeys().back().error);
  EXPECT_EQ(stage_sum(sink_.journeys().back()), rsp.latency);
}

TEST_F(JourneySimTest, ResetPipelineAbandonsInFlightJourneys) {
  make_sim(sim::Config::hmc_4link_4gb());
  enable_journeys();
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  rd.tag = 1;
  ASSERT_TRUE(sim_->send(rd, 0).ok());
  sim_->clock();  // In flight, not yet retired.
  EXPECT_EQ(sim_->journeys().in_flight(), 1U);
  sim_->reset_pipeline();
  EXPECT_EQ(sim_->journeys().in_flight(), 0U);
  EXPECT_TRUE(sink_.journeys().empty());  // Dropped, not completed.
}

TEST_F(JourneySimTest, RetryDelayAccruesToJourneyStages) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = 1'000'000;  // Corrupt every first transmission.
  cfg.link_retry_latency = 12;
  make_sim(cfg);
  enable_journeys();
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  rd.tag = 1;
  const sim::Response rsp = roundtrip(rd);
  ASSERT_EQ(sink_.journeys().size(), 1U);
  const Journey& j = sink_.journeys().back();
  // The request-direction retry parks the packet before the vault, so the
  // 12-cycle redelivery shows up in link_ingress; the attribution still
  // reconciles exactly.
  EXPECT_GE(j.stage_durations()[static_cast<std::size_t>(
                Stage::LinkIngress)],
            cfg.link_retry_latency);
  EXPECT_EQ(stage_sum(j), rsp.latency);
}

}  // namespace
}  // namespace hmcsim::trace
