// capture_order_test.cpp — deterministic trace capture for the parallel
// core. While a Tracer is capturing, emitting threads buffer events into
// per-worker CaptureBufs keyed by (cycle, stage, device rank);
// end_capture must replay the union through the sinks in exactly the
// order the sequential walk would have emitted them, no matter which
// buffer each event landed in or in what real-time order the workers ran.
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "src/trace/trace.hpp"

namespace hmcsim::trace {
namespace {

Event ev_at(std::uint64_t cycle, std::uint32_t dev, std::uint64_t seq) {
  Event ev;
  ev.cycle = cycle;
  ev.kind = Level::Rqst;
  ev.where.dev = dev;
  ev.value = seq;  // Expected replay position, asserted after end_capture.
  return ev;
}

void expect_replay_order(const VectorSink& sink, std::size_t count) {
  ASSERT_EQ(sink.events().size(), count);
  for (std::size_t i = 0; i < sink.events().size(); ++i) {
    EXPECT_EQ(sink.events()[i].value, i) << "replay position " << i;
  }
}

TEST(CaptureOrder, ReplaysSequentialCycleStageRankOrder) {
  // Three devices over two cycles, emitted in a deliberately scrambled
  // "worker" order (device 2 first, then 0, then 1; cycle 8 before
  // cycle 7 within each device). The sequential walk visits
  // A(0),A(1),A(2),B(0),B(1),B(2),C(2),C(1),C(0) per cycle, so the seq
  // numbers below encode that exact order.
  Tracer tracer;
  tracer.set_level(Level::All);
  VectorSink sink;
  tracer.attach(&sink);

  std::array<CaptureBuf, 3> bufs;
  tracer.begin_capture();

  const auto emit_device = [&](std::uint32_t dev, std::uint32_t rank_c,
                               std::array<std::uint64_t, 6> seq) {
    // One device's two cycles, all three stages — the order a free-running
    // worker would produce, cycles swapped to prove the key dominates.
    for (const int cyc_idx : {1, 0}) {
      const std::uint64_t cycle = 7 + static_cast<std::uint64_t>(cyc_idx);
      Tracer::set_capture_order(0, dev);
      tracer.emit(ev_at(cycle, dev, seq[static_cast<std::size_t>(cyc_idx) * 3]));
      Tracer::set_capture_order(1, dev);
      tracer.emit(
          ev_at(cycle, dev, seq[static_cast<std::size_t>(cyc_idx) * 3 + 1]));
      Tracer::set_capture_order(2, rank_c);
      tracer.emit(
          ev_at(cycle, dev, seq[static_cast<std::size_t>(cyc_idx) * 3 + 2]));
    }
  };

  // Sequential positions per (device, cycle): stage A = 0..2, stage B =
  // 3..5, stage C = 6..8 (descending device), then +9 for cycle 8.
  Tracer::bind_capture(&bufs[2]);
  emit_device(2, /*rank_c=*/0, {2, 5, 6, 11, 14, 15});
  Tracer::bind_capture(&bufs[0]);
  emit_device(0, /*rank_c=*/2, {0, 3, 8, 9, 12, 17});
  Tracer::bind_capture(&bufs[1]);
  emit_device(1, /*rank_c=*/1, {1, 4, 7, 10, 13, 16});
  Tracer::bind_capture(nullptr);

  EXPECT_TRUE(sink.events().empty());  // Nothing dispatched while capturing.
  tracer.end_capture(bufs);
  expect_replay_order(sink, 18);
  for (const CaptureBuf& buf : bufs) {
    EXPECT_TRUE(buf.empty());  // end_capture hands buffers back cleared.
  }
  EXPECT_FALSE(tracer.capturing());
}

TEST(CaptureOrder, AppendOrderBreaksTiesWithinABucket) {
  // Several events from one device in the same (cycle, stage) bucket:
  // the stable sort must keep their append order, which is the order the
  // device's stage code emitted them.
  Tracer tracer;
  tracer.set_level(Level::All);
  VectorSink sink;
  tracer.attach(&sink);

  std::array<CaptureBuf, 2> bufs;
  tracer.begin_capture();

  Tracer::bind_capture(&bufs[1]);  // Which buffer must not matter.
  Tracer::set_capture_order(1, 3);
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    tracer.emit(ev_at(42, 3, seq));
  }
  Tracer::bind_capture(nullptr);

  tracer.end_capture(bufs);
  expect_replay_order(sink, 5);
}

TEST(CaptureOrder, RealThreadsMergeDeterministically) {
  // The real topology: one OS thread per device, racing freely. The
  // replayed order must still be the sequential visit order regardless
  // of scheduling.
  Tracer tracer;
  tracer.set_level(Level::All);
  VectorSink sink;
  tracer.attach(&sink);

  constexpr std::uint32_t kDevs = 4;
  constexpr std::uint64_t kCycles = 16;
  std::array<CaptureBuf, kDevs> bufs;
  tracer.begin_capture();

  std::vector<std::thread> workers;
  for (std::uint32_t dev = 0; dev < kDevs; ++dev) {
    workers.emplace_back([&tracer, &bufs, dev] {
      Tracer::bind_capture(&bufs[dev]);
      for (std::uint64_t cycle = 0; cycle < kCycles; ++cycle) {
        const std::uint64_t base = cycle * kDevs * 2;
        Tracer::set_capture_order(0, dev);
        tracer.emit(ev_at(cycle, dev, base + dev));
        Tracer::set_capture_order(2, kDevs - 1 - dev);
        tracer.emit(ev_at(cycle, dev, base + kDevs + (kDevs - 1 - dev)));
      }
      Tracer::bind_capture(nullptr);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  tracer.end_capture(bufs);
  expect_replay_order(sink, kDevs * kCycles * 2);
}

TEST(CaptureOrder, MaskFiltersBeforeBuffering) {
  Tracer tracer;
  tracer.set_level(Level::Rqst);  // Rsp is masked off.
  VectorSink sink;
  tracer.attach(&sink);

  std::array<CaptureBuf, 1> bufs;
  tracer.begin_capture();
  Tracer::bind_capture(&bufs[0]);
  Tracer::set_capture_order(0, 0);
  tracer.emit(ev_at(1, 0, 0));
  Event masked = ev_at(1, 0, 99);
  masked.kind = Level::Rsp;
  tracer.emit(masked);
  Tracer::bind_capture(nullptr);
  tracer.end_capture(bufs);

  expect_replay_order(sink, 1);
}

TEST(CaptureOrder, UnboundThreadDispatchesDirectly) {
  // A thread that never bound a buffer (e.g. the host thread between
  // spans) falls through to normal dispatch even while capture is on.
  Tracer tracer;
  tracer.set_level(Level::All);
  VectorSink sink;
  tracer.attach(&sink);

  std::array<CaptureBuf, 1> bufs;
  tracer.begin_capture();
  Tracer::bind_capture(nullptr);
  tracer.emit(ev_at(5, 0, 0));
  EXPECT_EQ(sink.events().size(), 1U);
  tracer.end_capture(bufs);
  EXPECT_EQ(sink.events().size(), 1U);
}

}  // namespace
}  // namespace hmcsim::trace
