// trace_test.cpp — trace subsystem tests.
#include "src/trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hmcsim::trace {
namespace {

Event make_event(Level kind, std::uint64_t cycle = 10) {
  Event ev;
  ev.cycle = cycle;
  ev.kind = kind;
  ev.where = {1, 2, 3, 4, 5};
  ev.tag = 77;
  ev.op = "hmc_lock";
  ev.addr = 0x4000;
  ev.value = 9;
  return ev;
}

TEST(TraceLevel, BitmaskOperators) {
  const Level mask = Level::Stalls | Level::Cmc;
  EXPECT_TRUE(any(mask & Level::Stalls));
  EXPECT_TRUE(any(mask & Level::Cmc));
  EXPECT_FALSE(any(mask & Level::Latency));
  EXPECT_FALSE(any(Level::None));
}

TEST(Tracer, DisabledByDefault) {
  Tracer tracer;
  VectorSink sink;
  tracer.attach(&sink);
  tracer.emit(make_event(Level::Stalls));
  EXPECT_TRUE(sink.events().empty());
}

TEST(Tracer, MaskFiltersKinds) {
  Tracer tracer;
  VectorSink sink;
  tracer.attach(&sink);
  tracer.set_level(Level::Cmc | Level::Latency);
  tracer.emit(make_event(Level::Cmc));
  tracer.emit(make_event(Level::Stalls));  // Filtered.
  tracer.emit(make_event(Level::Latency));
  ASSERT_EQ(sink.events().size(), 2U);
  EXPECT_EQ(sink.events()[0].kind, Level::Cmc);
  EXPECT_EQ(sink.events()[1].kind, Level::Latency);
}

TEST(Tracer, MultipleSinksAllReceive) {
  Tracer tracer;
  VectorSink a;
  VectorSink b;
  tracer.attach(&a);
  tracer.attach(&b);
  tracer.set_level(Level::All);
  tracer.emit(make_event(Level::Rqst));
  EXPECT_EQ(a.events().size(), 1U);
  EXPECT_EQ(b.events().size(), 1U);
}

TEST(Tracer, AttachIsIdempotent) {
  Tracer tracer;
  VectorSink sink;
  tracer.attach(&sink);
  tracer.attach(&sink);
  tracer.set_level(Level::All);
  tracer.emit(make_event(Level::Rqst));
  EXPECT_EQ(sink.events().size(), 1U);
}

TEST(Tracer, DetachStopsDelivery) {
  Tracer tracer;
  VectorSink sink;
  tracer.attach(&sink);
  tracer.set_level(Level::All);
  tracer.detach(&sink);
  tracer.emit(make_event(Level::Rqst));
  EXPECT_TRUE(sink.events().empty());
}

TEST(TextSink, RendersCmcOpByName) {
  // The paper's requirement: CMC operations resolve in the trace by their
  // plugin-supplied name, like any normal HMC command.
  std::ostringstream oss;
  TextSink sink(oss);
  sink.on_event(make_event(Level::Cmc));
  const std::string line = oss.str();
  EXPECT_NE(line.find("CMC"), std::string::npos);
  EXPECT_NE(line.find("hmc_lock"), std::string::npos);
  EXPECT_NE(line.find("tag=77"), std::string::npos);
  EXPECT_NE(line.find("0x4000"), std::string::npos);
}

TEST(TextSink, IncludesNoteWhenPresent) {
  std::ostringstream oss;
  TextSink sink(oss);
  Event ev = make_event(Level::Stalls);
  ev.note = "vault request queue full";
  sink.on_event(ev);
  EXPECT_NE(oss.str().find("vault request queue full"), std::string::npos);
}

TEST(CsvSink, HeaderAndRow) {
  std::ostringstream oss;
  CsvSink sink(oss);
  sink.on_event(make_event(Level::Rsp));
  const std::string out = oss.str();
  EXPECT_EQ(out.find("cycle,kind,dev,quad,vault,bank,link,tag,op,addr"), 0U);
  EXPECT_NE(out.find("10,RSP,1,2,3,4,5,77,hmc_lock"), std::string::npos);
}

TEST(CountingSink, CountsPerKind) {
  CountingSink sink;
  sink.on_event(make_event(Level::Stalls));
  sink.on_event(make_event(Level::Stalls));
  sink.on_event(make_event(Level::Cmc));
  EXPECT_EQ(sink.count(Level::Stalls), 2U);
  EXPECT_EQ(sink.count(Level::Cmc), 1U);
  EXPECT_EQ(sink.count(Level::Latency), 0U);
  EXPECT_EQ(sink.total(), 3U);
  sink.reset();
  EXPECT_EQ(sink.total(), 0U);
  EXPECT_EQ(sink.count(Level::Stalls), 0U);
}

TEST(LatencySink, EmptyIsZero) {
  LatencySink sink;
  EXPECT_EQ(sink.count(), 0U);
  EXPECT_EQ(sink.min(), 0U);
  EXPECT_EQ(sink.max(), 0U);
  EXPECT_EQ(sink.mean(), 0.0);
  EXPECT_EQ(sink.percentile(0.5), 0U);
}

TEST(LatencySink, AggregatesOnlyLatencyEvents) {
  LatencySink sink;
  Event ev = make_event(Level::Latency);
  for (const std::uint64_t v : {3U, 5U, 7U, 9U, 100U}) {
    ev.value = v;
    sink.on_event(ev);
  }
  Event other = make_event(Level::Stalls);
  other.value = 9999;
  sink.on_event(other);  // Ignored.

  EXPECT_EQ(sink.count(), 5U);
  EXPECT_EQ(sink.min(), 3U);
  EXPECT_EQ(sink.max(), 100U);
  EXPECT_DOUBLE_EQ(sink.mean(), 124.0 / 5.0);
  EXPECT_EQ(sink.percentile(0.0), 3U);
  EXPECT_EQ(sink.percentile(0.5), 7U);
  EXPECT_EQ(sink.percentile(1.0), 100U);
}

TEST(LatencySink, PercentileEdgeCasesSmallSampleCounts) {
  // Nearest-rank rounding q*(n-1)+0.5 must never index past the last
  // sample, including the n=1 and n=2 degenerate sorts.
  LatencySink one;
  Event ev = make_event(Level::Latency);
  ev.value = 42;
  one.on_event(ev);
  EXPECT_EQ(one.percentile(0.0), 42U);
  EXPECT_EQ(one.percentile(0.5), 42U);
  EXPECT_EQ(one.percentile(1.0), 42U);

  LatencySink two;
  ev.value = 10;
  two.on_event(ev);
  ev.value = 20;
  two.on_event(ev);
  EXPECT_EQ(two.percentile(0.0), 10U);
  EXPECT_EQ(two.percentile(0.5), 20U);  // rank round(0.5) = 1
  EXPECT_EQ(two.percentile(1.0), 20U);
  // Out-of-range q clamps instead of over-indexing.
  EXPECT_EQ(two.percentile(1.5), 20U);
  EXPECT_EQ(two.percentile(-0.5), 10U);
}

TEST(LatencySink, PercentilesOnUniformRamp) {
  LatencySink sink;
  Event ev = make_event(Level::Latency);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    ev.value = v;
    sink.on_event(ev);
  }
  EXPECT_EQ(sink.percentile(0.95), 95U);
  EXPECT_EQ(sink.percentile(0.99), 99U);
  sink.reset();
  EXPECT_EQ(sink.count(), 0U);
}

TEST(LatencySink, EndToEndThroughSimulatorTraffic) {
  // Used as intended: attached to a live tracer with Latency enabled.
  Tracer tracer;
  LatencySink sink;
  tracer.attach(&sink);
  tracer.set_level(Level::Latency);
  Event ev = make_event(Level::Latency);
  ev.value = 3;
  tracer.emit(ev);
  tracer.emit(ev);
  EXPECT_EQ(sink.count(), 2U);
  EXPECT_EQ(sink.percentile(0.5), 3U);
}

TEST(TraceLevel, Names) {
  EXPECT_EQ(to_string(Level::Stalls), "STALL");
  EXPECT_EQ(to_string(Level::BankConflict), "BANK_CONFLICT");
  EXPECT_EQ(to_string(Level::Cmc), "CMC");
  EXPECT_EQ(to_string(Level::Latency), "LATENCY");
  EXPECT_EQ(to_string(Level::Register), "REGISTER");
  EXPECT_EQ(to_string(Level::Route), "ROUTE");
}

}  // namespace
}  // namespace hmcsim::trace
