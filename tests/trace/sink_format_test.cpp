// sink_format_test.cpp — golden-line guards for the trace sink formats.
//
// The text and CSV lines below are the documented formats from
// docs/TRACE_FORMAT.md; downstream parsers depend on them byte for byte.
// The CSV cases exercise RFC 4180 quoting (commas, embedded quotes and
// line breaks in the free-form fields) introduced with the journey
// subsystem's machine-readable notes.
#include "src/trace/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>

namespace hmcsim::trace {
namespace {

Event make_event() {
  Event ev;
  ev.cycle = 42;
  ev.kind = Level::Cmc;
  ev.where = {.dev = 1, .quad = 2, .vault = 3, .bank = 4, .link = 0};
  ev.tag = 9;
  ev.op = "hmc_lock";
  ev.addr = 0x4000;
  ev.value = 7;
  return ev;
}

TEST(LevelNames, JourneyRendersAsJourney) {
  EXPECT_EQ(to_string(Level::Journey), "JOURNEY");
  // Journey is part of the All mask: enabling everything enables journeys.
  EXPECT_TRUE(any(Level::All & Level::Journey));
}

TEST(TextSinkFormat, GoldenLine) {
  std::ostringstream os;
  TextSink sink(os);
  sink.on_event(make_event());
  EXPECT_EQ(os.str(),
            "42 CMC dev=1 quad=2 vault=3 bank=4 link=0 tag=9 op=hmc_lock "
            "addr=0x4000 value=7\n");
}

TEST(TextSinkFormat, NoteIsQuoted) {
  std::ostringstream os;
  TextSink sink(os);
  Event ev = make_event();
  ev.note = "deferred";
  sink.on_event(ev);
  EXPECT_NE(os.str().find("note=\"deferred\""), std::string::npos);
}

TEST(CsvSinkFormat, HeaderAndGoldenLine) {
  std::ostringstream os;
  CsvSink sink(os);
  sink.on_event(make_event());
  EXPECT_EQ(os.str(),
            "cycle,kind,dev,quad,vault,bank,link,tag,op,addr,value,note\n"
            "42,CMC,1,2,3,4,0,9,hmc_lock,0x4000,7,\n");
}

TEST(CsvSinkFormat, AddrIsHexWithPrefix) {
  std::ostringstream os;
  CsvSink sink(os);
  Event ev = make_event();
  ev.addr = 0xDEADBEEF;
  sink.on_event(ev);
  EXPECT_NE(os.str().find(",0xdeadbeef,"), std::string::npos);
  // The value column that follows stays decimal.
  EXPECT_NE(os.str().find(",0xdeadbeef,7,"), std::string::npos);
}

TEST(CsvSinkFormat, EmptyOpRendersDash) {
  std::ostringstream os;
  CsvSink sink(os);
  Event ev = make_event();
  ev.op = {};
  sink.on_event(ev);
  EXPECT_NE(os.str().find(",9,-,0x4000,"), std::string::npos);
}

TEST(CsvSinkFormat, NoteWithCommasIsQuoted) {
  std::ostringstream os;
  CsvSink sink(os);
  Event ev = make_event();
  ev.note = "link_ingress=1, vault_queue=2";
  sink.on_event(ev);
  EXPECT_EQ(os.str(),
            "cycle,kind,dev,quad,vault,bank,link,tag,op,addr,value,note\n"
            "42,CMC,1,2,3,4,0,9,hmc_lock,0x4000,7,"
            "\"link_ingress=1, vault_queue=2\"\n");
}

TEST(CsvSinkFormat, EmbeddedQuotesAreDoubled) {
  std::ostringstream os;
  CsvSink sink(os);
  Event ev = make_event();
  ev.note = "plugin said \"busy\"";
  sink.on_event(ev);
  EXPECT_NE(os.str().find(",\"plugin said \"\"busy\"\"\"\n"),
            std::string::npos);
}

TEST(CsvSinkFormat, LineBreakInNoteStaysOneField) {
  std::ostringstream os;
  CsvSink sink(os);
  Event ev = make_event();
  ev.note = "line1\nline2";
  sink.on_event(ev);
  EXPECT_NE(os.str().find(",\"line1\nline2\"\n"), std::string::npos);
}

TEST(CsvSinkFormat, OpWithCommaIsQuoted) {
  std::ostringstream os;
  CsvSink sink(os);
  Event ev = make_event();
  ev.op = "cmc,custom";
  sink.on_event(ev);
  EXPECT_NE(os.str().find(",9,\"cmc,custom\",0x4000,"), std::string::npos);
}

TEST(CountingSinkFormat, CountsPerCategory) {
  CountingSink sink;
  Event ev = make_event();
  sink.on_event(ev);
  sink.on_event(ev);
  ev.kind = Level::Retry;
  sink.on_event(ev);
  ev.kind = Level::Journey;
  sink.on_event(ev);
  EXPECT_EQ(sink.count(Level::Cmc), 2U);
  EXPECT_EQ(sink.count(Level::Retry), 1U);
  EXPECT_EQ(sink.count(Level::Journey), 1U);
  EXPECT_EQ(sink.count(Level::Stalls), 0U);
  EXPECT_EQ(sink.total(), 4U);
  sink.reset();
  EXPECT_EQ(sink.count(Level::Cmc), 0U);
  EXPECT_EQ(sink.total(), 0U);
}

TEST(LatencySinkFormat, BatchPercentilesMatchSingleQueries) {
  LatencySink sink;
  Event ev;
  ev.kind = Level::Latency;
  // Insert out of order; queries must see the sorted distribution.
  for (const std::uint64_t v : {9ULL, 1ULL, 5ULL, 3ULL, 7ULL, 2ULL, 8ULL,
                                4ULL, 6ULL, 10ULL}) {
    ev.value = v;
    sink.on_event(ev);
  }
  constexpr std::array<double, 3> kQs{0.5, 0.95, 0.99};
  const auto batch = sink.percentiles(kQs);
  ASSERT_EQ(batch.size(), 3U);
  EXPECT_EQ(batch[0], sink.percentile(0.5));
  EXPECT_EQ(batch[1], sink.percentile(0.95));
  EXPECT_EQ(batch[2], sink.percentile(0.99));
  EXPECT_EQ(batch[0], 6U);   // Nearest-rank median of 1..10.
  EXPECT_EQ(batch[2], 10U);  // Tail lands on the maximum.

  // Interleaved inserts invalidate the cache: new samples are visible.
  ev.value = 100;
  sink.on_event(ev);
  EXPECT_EQ(sink.percentile(1.0), 100U);
  EXPECT_EQ(sink.max(), 100U);

  sink.reset();
  EXPECT_EQ(sink.count(), 0U);
  EXPECT_EQ(sink.percentile(0.5), 0U);
}

}  // namespace
}  // namespace hmcsim::trace
