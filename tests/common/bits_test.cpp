// bits_test.cpp — bit-field helper unit tests.
#include "src/common/bits.hpp"

#include <gtest/gtest.h>

namespace hmcsim::bits {
namespace {

TEST(Bits, MaskWidths) {
  EXPECT_EQ(mask(0), 0ULL);
  EXPECT_EQ(mask(1), 1ULL);
  EXPECT_EQ(mask(7), 0x7FULL);
  EXPECT_EQ(mask(16), 0xFFFFULL);
  EXPECT_EQ(mask(34), 0x3FFFFFFFFULL);
  EXPECT_EQ(mask(63), 0x7FFFFFFFFFFFFFFFULL);
  EXPECT_EQ(mask(64), ~0ULL);
}

TEST(Bits, ExtractBasic) {
  const std::uint64_t word = 0xABCD'EF01'2345'6789ULL;
  EXPECT_EQ(extract(word, 0, 4), 0x9ULL);
  EXPECT_EQ(extract(word, 4, 8), 0x78ULL);
  EXPECT_EQ(extract(word, 32, 16), 0xEF01ULL);
  EXPECT_EQ(extract(word, 60, 4), 0xAULL);
  EXPECT_EQ(extract(word, 0, 64), word);
}

TEST(Bits, DepositBasic) {
  std::uint64_t word = 0;
  word = deposit(word, 0, 7, 0x55);
  EXPECT_EQ(word, 0x55ULL);
  word = deposit(word, 7, 5, 0x1F);
  EXPECT_EQ(extract(word, 7, 5), 0x1FULL);
  EXPECT_EQ(extract(word, 0, 7), 0x55ULL);
}

TEST(Bits, DepositTruncatesValue) {
  // Bits of value above the field width are discarded.
  const std::uint64_t word = deposit(0, 8, 4, 0xFF);
  EXPECT_EQ(word, 0xF00ULL);
}

TEST(Bits, DepositPreservesNeighbours) {
  std::uint64_t word = ~0ULL;
  word = deposit(word, 8, 8, 0);
  EXPECT_EQ(word, 0xFFFF'FFFF'FFFF'00FFULL);
}

TEST(Bits, ExtractDepositRoundTrip) {
  for (unsigned lsb = 0; lsb < 60; lsb += 7) {
    for (unsigned width = 1; width <= 64 - lsb; width += 5) {
      const std::uint64_t value = 0xA5A5'A5A5'A5A5'A5A5ULL & mask(width);
      const std::uint64_t word = deposit(0x1234'5678'9ABC'DEF0ULL, lsb,
                                         width, value);
      EXPECT_EQ(extract(word, lsb, width), value)
          << "lsb=" << lsb << " width=" << width;
    }
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0, 8), 0);
  EXPECT_EQ(sign_extend(0x1FF, 9), -1);
  EXPECT_EQ(sign_extend(0xFFFFFFFFFFFFFFFFULL, 64), -1);
}

TEST(Bits, Fits) {
  EXPECT_TRUE(fits(0, 1));
  EXPECT_TRUE(fits(1, 1));
  EXPECT_FALSE(fits(2, 1));
  EXPECT_TRUE(fits(0x3FFFFFFFFULL, 34));
  EXPECT_FALSE(fits(0x400000000ULL, 34));
  EXPECT_TRUE(fits(~0ULL, 64));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0U);
  EXPECT_EQ(log2_exact(2), 1U);
  EXPECT_EQ(log2_exact(64), 6U);
  EXPECT_EQ(log2_exact(4096), 12U);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, FieldTypeAccessors) {
  using F = Field<12, 11>;
  EXPECT_EQ(F::kLsb, 12U);
  EXPECT_EQ(F::kWidth, 11U);
  std::uint64_t word = 0;
  word = F::set(word, 0x7FF);
  EXPECT_EQ(F::get(word), 0x7FFULL);
  EXPECT_TRUE(F::holds(0x7FF));
  EXPECT_FALSE(F::holds(0x800));
}

TEST(Bits, FieldsAreConstexpr) {
  using F = Field<0, 7>;
  static_assert(F::get(F::set(0, 0x5A)) == 0x5A);
  static_assert(F::holds(127));
  static_assert(!F::holds(128));
  SUCCEED();
}

}  // namespace
}  // namespace hmcsim::bits
