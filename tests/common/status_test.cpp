// status_test.cpp — error propagation type tests.
#include "src/common/status.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hmcsim {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(s.stalled());
  EXPECT_EQ(s.code(), StatusCode::Ok);
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, FactoryConstructors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_TRUE(Status::Stall().stalled());
  EXPECT_EQ(Status::NoData().code(), StatusCode::NoData);
  EXPECT_EQ(Status::InvalidArg("x").code(), StatusCode::InvalidArg);
  EXPECT_EQ(Status::InvalidState("x").code(), StatusCode::InvalidState);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::NotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::AlreadyExists);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::Unsupported);
  EXPECT_EQ(Status::LoadError("x").code(), StatusCode::LoadError);
  EXPECT_EQ(Status::CmcError("x").code(), StatusCode::CmcError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::Internal);
}

TEST(Status, MessagePreserved) {
  const Status s = Status::InvalidArg("bad tag");
  EXPECT_EQ(s.message(), "bad tag");
  EXPECT_EQ(s.to_string(), "INVALID_ARG: bad tag");
}

TEST(Status, ToStringWithoutMessage) {
  EXPECT_EQ(Status::Ok().to_string(), "OK");
  EXPECT_EQ(Status::Stall().to_string(), "STALL");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::InvalidArg("a"), Status::InvalidArg("b"));
  EXPECT_FALSE(Status::InvalidArg("a") == Status::NotFound("a"));
}

TEST(Status, StreamOperator) {
  std::ostringstream oss;
  oss << Status::NotFound("missing");
  EXPECT_EQ(oss.str(), "NOT_FOUND: missing");
  std::ostringstream oss2;
  oss2 << StatusCode::Stall;
  EXPECT_EQ(oss2.str(), "STALL");
}

TEST(StatusCode, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::Ok, StatusCode::Stall, StatusCode::NoData,
        StatusCode::InvalidArg, StatusCode::InvalidState,
        StatusCode::NotFound, StatusCode::AlreadyExists,
        StatusCode::Unsupported, StatusCode::LoadError, StatusCode::CmcError,
        StatusCode::Internal}) {
    EXPECT_NE(to_string(code), "UNKNOWN");
    EXPECT_FALSE(to_string(code).empty());
  }
}

TEST(Status, StallIsNotOkAndNotError) {
  const Status s = Status::Stall("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.stalled());
}

}  // namespace
}  // namespace hmcsim
