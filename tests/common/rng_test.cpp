// rng_test.cpp — deterministic generator tests.
#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hmcsim {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, BelowStaysInBound) {
  Xoshiro256 rng(123);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL,
                                    (1ULL << 33) + 5}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1), 0U);
  }
}

TEST(Xoshiro256, CoversSmallRange) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.below(8));
  }
  EXPECT_EQ(seen.size(), 8U);  // All residues of a small range appear.
}

TEST(Xoshiro256, RoughUniformity) {
  Xoshiro256 rng(2024);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 16000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.below(kBuckets)] += 1;
  }
  for (const int c : counts) {
    // Expect ~1000 per bucket; allow generous +/-20%.
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  SUCCEED();
}

}  // namespace
}  // namespace hmcsim
