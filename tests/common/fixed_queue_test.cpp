// fixed_queue_test.cpp — bounded FIFO unit tests.
#include "src/common/fixed_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hmcsim {
namespace {

TEST(FixedQueue, StartsEmpty) {
  FixedQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0U);
  EXPECT_EQ(q.capacity(), 4U);
  EXPECT_EQ(q.free_slots(), 4U);
}

TEST(FixedQueue, PushPopFifoOrder) {
  FixedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.push(i));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.front(), i);
    EXPECT_EQ(q.pop(), i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, PushFailsWhenFull) {
  FixedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.size(), 2U);
  EXPECT_EQ(q.front(), 1);  // Unchanged by the failed push.
}

TEST(FixedQueue, WrapAround) {
  FixedQueue<int> q(3);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  EXPECT_EQ(q.pop(), 1);
  ASSERT_TRUE(q.push(3));
  ASSERT_TRUE(q.push(4));  // Wraps into the freed slot.
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
}

TEST(FixedQueue, LongWrapStress) {
  FixedQueue<int> q(7);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (!q.full()) {
      ASSERT_TRUE(q.push(next_in++));
    }
    const int drain = 1 + round % 7;
    for (int i = 0; i < drain && !q.empty(); ++i) {
      ASSERT_EQ(q.pop(), next_out++);
    }
  }
}

TEST(FixedQueue, IndexedPeek) {
  FixedQueue<int> q(4);
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(20));
  ASSERT_TRUE(q.push(30));
  EXPECT_EQ(q.at(0), 10);
  EXPECT_EQ(q.at(1), 20);
  EXPECT_EQ(q.at(2), 30);
  (void)q.pop();
  EXPECT_EQ(q.at(0), 20);
  EXPECT_EQ(q.at(1), 30);
}

TEST(FixedQueue, ClearKeepsCapacity) {
  FixedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 4U);
  ASSERT_TRUE(q.push(9));
  EXPECT_EQ(q.front(), 9);
}

TEST(FixedQueue, ResetChangesCapacity) {
  FixedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  q.reset(8);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 8U);
}

TEST(FixedQueue, MoveOnlyFriendlyTypes) {
  FixedQueue<std::string> q(2);
  ASSERT_TRUE(q.push("alpha"));
  ASSERT_TRUE(q.push("beta"));
  EXPECT_EQ(q.pop(), "alpha");
  EXPECT_EQ(q.pop(), "beta");
}

TEST(FixedQueue, DropFrontDiscardsInOrder) {
  FixedQueue<std::string> q(3);
  ASSERT_TRUE(q.push("a"));
  ASSERT_TRUE(q.push("b"));
  ASSERT_TRUE(q.push("c"));
  std::string moved = std::move(q.front());
  q.drop_front();
  EXPECT_EQ(moved, "a");
  EXPECT_EQ(q.size(), 2U);
  EXPECT_EQ(q.front(), "b");
  q.drop_front();
  EXPECT_EQ(q.front(), "c");
  ASSERT_TRUE(q.push("d"));  // Slot freed by drop_front is reusable.
  q.drop_front();
  EXPECT_EQ(q.pop(), "d");
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, DefaultConstructedHasZeroCapacity) {
  FixedQueue<int> q;
  EXPECT_EQ(q.capacity(), 0U);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.full());  // Zero capacity: full and empty simultaneously.
  EXPECT_FALSE(q.push(1));
}

}  // namespace
}  // namespace hmcsim
