// cmc_rogue_test.cpp — end-to-end CMC fault containment through the full
// packet path: a dlopen'd rogue plugin misbehaves in every supported way
// (plain failure, response-buffer overrun, memory-budget bust, null
// service arguments, a thrown exception) and the simulator must answer
// every request with RSP_ERROR instead of crashing, quarantine the slot
// at the failure threshold while a well-behaved op keeps executing, and
// produce identical stats under active-set and exhaustive clocking.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "plugins/builtin.h"
#include "src/sim/simulator.hpp"
#include "src/sim/stats_report.hpp"

namespace hmcsim {
namespace {

#ifdef HMCSIM_PLUGIN_DIR

std::string plugin(const std::string& name) {
  return std::string(HMCSIM_PLUGIN_DIR) + "/" + name;
}

constexpr std::uint8_t kRspError =
    static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);
constexpr std::uint8_t kErrCmcInactive = 3;
constexpr std::uint8_t kErrCmcFailed = 4;

// Rogue behaviour is selected by address bits [6:4] (see hmc_rogue.c):
// 0 = behave, 1 = fail, 2 = overrun, 3 = budget bust, 4 = null read.
std::uint64_t rogue_addr(std::uint64_t mode) { return 0x10000 | (mode << 4); }

class CmcRogueEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::Config cfg = sim::Config::hmc_4link_4gb();
    cfg.cmc_fail_threshold = 4;
    cfg.cmc_mem_word_budget = 1024;
    ASSERT_TRUE(sim::Simulator::create(cfg, sim_).ok());
    ASSERT_TRUE(sim_->load_cmc(plugin("hmc_rogue.so")).ok());
    ASSERT_TRUE(sim_->load_cmc(plugin("hmc_rogue_throw.so")).ok());
    ASSERT_TRUE(sim_->register_cmc(hmcsim_builtin_satinc_register,
                                   hmcsim_builtin_satinc_execute,
                                   hmcsim_builtin_satinc_str)
                    .ok());
  }

  // One round trip; returns the response packet.
  spec::RspPacket transact(spec::Rqst rqst, std::uint64_t addr) {
    spec::RqstParams params;
    params.rqst = rqst;
    params.addr = addr;
    params.tag = static_cast<std::uint16_t>(next_tag_++ & 0x7FF);
    EXPECT_TRUE(sim_->send(params, 0).ok());
    int guard = 0;
    while (!sim_->rsp_ready(0) && guard++ < 4096) {
      sim_->clock();
    }
    sim::Response rsp;
    EXPECT_TRUE(sim_->recv(0, rsp).ok());
    return rsp.pkt;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::uint16_t next_tag_ = 1;
};

TEST_F(CmcRogueEndToEnd, EveryMisbehaviourAnswersRspErrorNotACrash) {
  // Each failure mode yields RSP_ERROR with the CMC-failed errstat.
  for (const std::uint64_t mode : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const spec::RspPacket rsp =
        transact(spec::Rqst::CMC70, rogue_addr(mode));
    EXPECT_EQ(rsp.cmd(), kRspError) << "mode " << mode;
    EXPECT_EQ(rsp.errstat(), kErrCmcFailed) << "mode " << mode;
  }
  // A thrown exception is just another contained failure.
  const spec::RspPacket rsp = transact(spec::Rqst::CMC71, 0x200);
  EXPECT_EQ(rsp.cmd(), kRspError);
  EXPECT_EQ(rsp.errstat(), kErrCmcFailed);
}

TEST_F(CmcRogueEndToEnd, ThresholdQuarantinesRogueWhileNeighbourExecutes) {
  // Threshold is 4: four straight failures quarantine the slot.
  for (int i = 0; i < 4; ++i) {
    const spec::RspPacket rsp = transact(spec::Rqst::CMC70, rogue_addr(1));
    EXPECT_EQ(rsp.errstat(), kErrCmcFailed);
  }
  const metrics::Gauge* quarantined =
      sim_->metrics().find_gauge("cmc.hmc_rogue.quarantined");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->value(), 1.0);

  // Further rogue requests complete with the inactive errstat — the
  // plugin is no longer called, but the request path stays alive.
  const spec::RspPacket after = transact(spec::Rqst::CMC70, rogue_addr(0));
  EXPECT_EQ(after.cmd(), kRspError);
  EXPECT_EQ(after.errstat(), kErrCmcInactive);

  // The well-behaved neighbour on another slot is unaffected.
  const spec::RspPacket good = transact(spec::Rqst::CMC21, 0x20000);
  EXPECT_NE(good.cmd(), kRspError);
  const metrics::Counter* satinc_failures =
      sim_->metrics().find_counter("cmc.hmc_satinc.failures");
  ASSERT_NE(satinc_failures, nullptr);
  EXPECT_EQ(satinc_failures->value(), 0U);

  // Rearm lifts the quarantine; the behaving mode then succeeds.
  ASSERT_TRUE(sim_->rearm_cmc(spec::Rqst::CMC70).ok());
  EXPECT_EQ(quarantined->value(), 0.0);
  const spec::RspPacket revived = transact(spec::Rqst::CMC70, rogue_addr(0));
  EXPECT_NE(revived.cmd(), kRspError);
}

TEST_F(CmcRogueEndToEnd, SuccessBetweenFailuresPreventsQuarantine) {
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {  // Three strikes, threshold is four...
      transact(spec::Rqst::CMC70, rogue_addr(1));
    }
    const spec::RspPacket ok = transact(spec::Rqst::CMC70, rogue_addr(0));
    EXPECT_NE(ok.cmd(), kRspError);  // ...then a success resets the streak.
  }
  const metrics::Gauge* quarantined =
      sim_->metrics().find_gauge("cmc.hmc_rogue.quarantined");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->value(), 0.0);
}

TEST(CmcRogueEquivalence, ActiveSetAndExhaustiveStatsAreByteIdentical) {
  auto run = [](bool exhaustive) {
    sim::Config cfg = sim::Config::hmc_4link_4gb();
    cfg.cmc_fail_threshold = 4;
    cfg.cmc_mem_word_budget = 1024;
    cfg.exhaustive_clock = exhaustive;
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(cfg, sim).ok());
    EXPECT_TRUE(sim->load_cmc(plugin("hmc_rogue.so")).ok());
    std::uint16_t tag = 1;
    for (int i = 0; i < 12; ++i) {
      spec::RqstParams params;
      params.rqst = spec::Rqst::CMC70;
      params.addr = 0x10000 | (static_cast<std::uint64_t>(i % 5) << 4);
      params.tag = tag++;
      EXPECT_TRUE(sim->send(params, 0).ok());
      int guard = 0;
      while (!sim->rsp_ready(0) && guard++ < 4096) {
        sim->clock();
      }
      sim::Response rsp;
      EXPECT_TRUE(sim->recv(0, rsp).ok());
    }
    (void)sim->clock_until_idle(8192);
    return sim::format_stats_json(*sim);
  };
  EXPECT_EQ(run(false), run(true));
}

#else
TEST(CmcRogueEndToEnd, DISABLED_PluginsUnavailable) {
  GTEST_SKIP() << "HMCSIM_PLUGIN_DIR not defined";
}
#endif

}  // namespace
}  // namespace hmcsim
