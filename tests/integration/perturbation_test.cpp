// perturbation_test.cpp — the paper's "No Simulation Perturbation"
// requirement: integrating CMC support must not disturb the behaviour of
// ordinary HMC traffic. We run identical non-CMC workloads on simulators
// with and without CMC operations loaded and require bit-identical
// latencies, traces and statistics.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "plugins/builtin.h"
#include "src/common/rng.hpp"
#include "src/host/mutex_driver.hpp"
#include "src/sim/sim_stats.hpp"
#include "src/sim/simulator.hpp"

namespace hmcsim {
namespace {

/// Run a deterministic mixed workload (reads, writes, atomics across many
/// vaults) and return a digest of every response: (tag, cmd, latency,
/// payload word 0) accumulated into a stream.
std::string run_workload_digest(sim::Simulator& sim) {
  std::ostringstream digest;
  Xoshiro256 rng(0x5EED);
  std::uint16_t tag = 0;
  int outstanding = 0;

  auto drain = [&](bool block) {
    do {
      sim.clock();
      for (std::uint32_t link = 0; link < sim.config().num_links; ++link) {
        while (sim.rsp_ready(link)) {
          sim::Response rsp;
          EXPECT_TRUE(sim.recv(link, rsp).ok());
          digest << rsp.pkt.tag() << ':' << unsigned(rsp.pkt.cmd()) << ':'
                 << rsp.latency << ':'
                 << (rsp.pkt.payload().empty() ? 0 : rsp.pkt.payload()[0])
                 << '\n';
          --outstanding;
        }
      }
    } while (block && outstanding > 0);
  };

  for (int i = 0; i < 300; ++i) {
    const std::uint64_t addr = (rng() % (1ULL << 20)) & ~15ULL;
    const std::uint32_t link = static_cast<std::uint32_t>(rng.below(4));
    spec::RqstParams p;
    p.tag = tag++;
    p.addr = addr;
    switch (rng.below(4)) {
      case 0:
        p.rqst = spec::Rqst::RD64;
        break;
      case 1: {
        static const std::array<std::uint64_t, 2> data{0xAB, 0xCD};
        p.rqst = spec::Rqst::WR16;
        p.payload = data;
        break;
      }
      case 2:
        p.rqst = spec::Rqst::INC8;
        break;
      default: {
        static const std::array<std::uint64_t, 2> imm{1, 1};
        p.rqst = spec::Rqst::TWOADDS8R;
        p.payload = imm;
        break;
      }
    }
    Status s = sim.send(p, link);
    while (s.stalled()) {
      drain(false);
      s = sim.send(p, link);
    }
    EXPECT_TRUE(s.ok());
    ++outstanding;
    if (i % 7 == 0) {
      drain(false);
    }
  }
  drain(true);
  digest << "cycles=" << sim.cycle();
  const auto stats = sim::collect_stats(sim);
  digest << " rqsts=" << stats.rqsts_processed
         << " flits=" << stats.rqst_flits << '/'
         << stats.rsp_flits;
  return digest.str();
}

void load_all_builtin_cmcs(sim::Simulator& sim) {
  struct Op {
    hmcsim_cmc_register_fn reg;
    hmcsim_cmc_execute_fn exec;
    hmcsim_cmc_str_fn str;
  };
  const Op ops[] = {
      {hmcsim_builtin_lock_register, hmcsim_builtin_lock_execute,
       hmcsim_builtin_lock_str},
      {hmcsim_builtin_trylock_register, hmcsim_builtin_trylock_execute,
       hmcsim_builtin_trylock_str},
      {hmcsim_builtin_unlock_register, hmcsim_builtin_unlock_execute,
       hmcsim_builtin_unlock_str},
      {hmcsim_builtin_popcnt_register, hmcsim_builtin_popcnt_execute,
       hmcsim_builtin_popcnt_str},
      {hmcsim_builtin_fadd_f64_register, hmcsim_builtin_fadd_f64_execute,
       hmcsim_builtin_fadd_f64_str},
      {hmcsim_builtin_fetchmax_register, hmcsim_builtin_fetchmax_execute,
       hmcsim_builtin_fetchmax_str},
      {hmcsim_builtin_bloomset_register, hmcsim_builtin_bloomset_execute,
       hmcsim_builtin_bloomset_str},
      {hmcsim_builtin_zero16_register, hmcsim_builtin_zero16_execute,
       hmcsim_builtin_zero16_str},
  };
  for (const Op& op : ops) {
    ASSERT_TRUE(sim.register_cmc(op.reg, op.exec, op.str).ok());
  }
}

TEST(NoPerturbation, NonCmcTrafficIdenticalWithAndWithoutCmcLoaded) {
  std::string without;
  std::string with;
  {
    std::unique_ptr<sim::Simulator> sim;
    ASSERT_TRUE(
        sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
    without = run_workload_digest(*sim);
  }
  {
    std::unique_ptr<sim::Simulator> sim;
    ASSERT_TRUE(
        sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
    load_all_builtin_cmcs(*sim);
    with = run_workload_digest(*sim);
  }
  EXPECT_EQ(without, with);
  EXPECT_FALSE(without.empty());
}

TEST(NoPerturbation, TracesIdenticalWithAndWithoutCmcLoaded) {
  auto traced_run = [](bool load_cmc) {
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(
        sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
    if (load_cmc) {
      load_all_builtin_cmcs(*sim);
    }
    std::ostringstream trace_out;
    trace::TextSink sink(trace_out);
    sim->tracer().attach(&sink);
    sim->tracer().set_level(trace::Level::All);
    for (int i = 0; i < 20; ++i) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD16;
      rd.addr = 64ULL * static_cast<std::uint64_t>(i);
      rd.tag = static_cast<std::uint16_t>(i);
      EXPECT_TRUE(sim->send(rd, static_cast<std::uint32_t>(i % 4)).ok());
    }
    for (int i = 0; i < 10; ++i) {
      sim->clock();
      for (std::uint32_t link = 0; link < 4; ++link) {
        sim::Response rsp;
        while (sim->recv(link, rsp).ok()) {
        }
      }
    }
    return trace_out.str();
  };
  EXPECT_EQ(traced_run(false), traced_run(true));
}

TEST(NoPerturbation, MutexRunLeavesNonCmcPathsClean) {
  // After a full contention run, ordinary traffic still behaves nominally
  // (the CMC machinery does not leak state into the standard pipeline).
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(
      sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
  load_all_builtin_cmcs(*sim);
  host::MutexResult result;
  ASSERT_TRUE(host::run_mutex_contention(*sim, 16, {}, result).ok());

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x9000;
  rd.tag = 100;
  ASSERT_TRUE(sim->send(rd, 0).ok());
  int guard = 0;
  while (!sim->rsp_ready(0) && guard++ < 100) {
    sim->clock();
  }
  sim::Response rsp;
  ASSERT_TRUE(sim->recv(0, rsp).ok());
  EXPECT_EQ(rsp.latency, 3U);  // Still the uncontended round trip.
}

}  // namespace
}  // namespace hmcsim
