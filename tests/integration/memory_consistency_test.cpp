// memory_consistency_test.cpp — randomized differential property test.
//
// Drives long random command streams through the full pipeline while
// maintaining a shadow ("oracle") memory image updated with the same
// architectural semantics. After every response wave the oracle and the
// device must agree; at the end, the complete touched address range is
// compared byte for byte. This catches ordering bugs anywhere in the
// link/crossbar/vault path as well as AMO semantic regressions.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <map>
#include <vector>

#include "src/common/rng.hpp"
#include "src/sim/simulator.hpp"

namespace hmcsim {
namespace {

/// Shadow memory with the same semantics as the device's backing store.
class Oracle {
 public:
  std::uint64_t read_u64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(byte(addr + i)) << (8 * i);
    }
    return v;
  }
  void write_u64(std::uint64_t addr, std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      mem_[addr + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
    }
  }
  void write_bytes(std::uint64_t addr, std::span<const std::uint8_t> in) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      mem_[addr + i] = in[i];
    }
  }
  std::uint8_t byte(std::uint64_t addr) const {
    const auto it = mem_.find(addr);
    return it == mem_.end() ? 0 : it->second;
  }
  const std::map<std::uint64_t, std::uint8_t>& bytes() const { return mem_; }

 private:
  std::map<std::uint64_t, std::uint8_t> mem_;
};

struct StreamParams {
  std::uint64_t seed;
  int operations;
  sim::Config config;
  std::string name;
};

class ConsistencyTest : public ::testing::TestWithParam<StreamParams> {};

TEST_P(ConsistencyTest, DeviceMatchesOracle) {
  const StreamParams& sp = GetParam();
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(sp.config, sim).ok());
  Oracle oracle;
  Xoshiro256 rng(sp.seed);

  // Serialized issue (one op in flight) makes the oracle exact: with the
  // single-owner vault execution, concurrent ops to distinct addresses
  // commute, so serial equivalence is the architectural contract.
  auto roundtrip = [&](const spec::RqstParams& params) {
    Status s = sim->send(params, static_cast<std::uint32_t>(rng.below(
                                     sp.config.num_links)));
    ASSERT_TRUE(s.ok()) << s.to_string();
    const bool posted =
        spec::command_info(params.rqst).rsp_flits == 0;
    for (int guard = 0; guard < 100; ++guard) {
      sim->clock();
      for (std::uint32_t link = 0; link < sp.config.num_links; ++link) {
        sim::Response rsp;
        if (sim->recv(link, rsp).ok()) {
          return;
        }
      }
      if (posted && guard >= 4) {
        return;  // Posted: just let it land.
      }
    }
    FAIL() << "no response";
  };

  const std::uint64_t kSpan = 1 << 16;  // 64 KiB working set.
  std::array<std::uint64_t, 32> payload{};

  for (int op = 0; op < sp.operations; ++op) {
    const std::uint64_t addr16 = (rng() % kSpan) & ~15ULL;
    spec::RqstParams p;
    p.addr = addr16;
    p.tag = static_cast<std::uint16_t>(op & spec::kMaxTag);

    switch (rng.below(8)) {
      case 0: {  // Block write of random size.
        static constexpr spec::Rqst kWrites[] = {
            spec::Rqst::WR16, spec::Rqst::WR32, spec::Rqst::WR64,
            spec::Rqst::WR128, spec::Rqst::P_WR16, spec::Rqst::P_WR64};
        p.rqst = kWrites[rng.below(std::size(kWrites))];
        const auto bytes = spec::command_info(p.rqst).data_bytes;
        p.addr = (rng() % kSpan) & ~255ULL;  // Keep the block in range.
        std::vector<std::uint8_t> raw(bytes);
        for (std::size_t w = 0; w < bytes / 8; ++w) {
          payload[w] = rng();
          std::memcpy(raw.data() + w * 8, &payload[w], 8);
        }
        p.payload = {payload.data(), static_cast<std::size_t>(bytes / 8)};
        oracle.write_bytes(p.addr, raw);
        break;
      }
      case 1:  // INC8.
        p.rqst = rng.below(2) == 0 ? spec::Rqst::INC8 : spec::Rqst::P_INC8;
        oracle.write_u64(addr16, oracle.read_u64(addr16) + 1);
        break;
      case 2: {  // 2ADD8.
        p.rqst = spec::Rqst::TWOADD8;
        payload[0] = rng();
        payload[1] = rng();
        p.payload = {payload.data(), 2};
        oracle.write_u64(addr16, oracle.read_u64(addr16) + payload[0]);
        oracle.write_u64(addr16 + 8, oracle.read_u64(addr16 + 8) + payload[1]);
        break;
      }
      case 3: {  // Boolean.
        p.rqst = spec::Rqst::XOR16;
        payload[0] = rng();
        payload[1] = rng();
        p.payload = {payload.data(), 2};
        oracle.write_u64(addr16, oracle.read_u64(addr16) ^ payload[0]);
        oracle.write_u64(addr16 + 8, oracle.read_u64(addr16 + 8) ^ payload[1]);
        break;
      }
      case 4: {  // CASEQ8 with a 50% chance of matching comparand.
        p.rqst = spec::Rqst::CASEQ8;
        const std::uint64_t current = oracle.read_u64(addr16);
        payload[0] = rng();  // Swap value.
        payload[1] = rng.below(2) == 0 ? current : rng();
        p.payload = {payload.data(), 2};
        if (current == payload[1]) {
          oracle.write_u64(addr16, payload[0]);
        }
        break;
      }
      case 5: {  // SWAP16.
        p.rqst = spec::Rqst::SWAP16;
        payload[0] = rng();
        payload[1] = rng();
        p.payload = {payload.data(), 2};
        oracle.write_u64(addr16, payload[0]);
        oracle.write_u64(addr16 + 8, payload[1]);
        break;
      }
      case 6: {  // BWR.
        p.rqst = spec::Rqst::BWR;
        payload[0] = rng();
        payload[1] = rng();
        p.payload = {payload.data(), 2};
        const std::uint64_t m = oracle.read_u64(addr16);
        oracle.write_u64(addr16,
                         (m & ~payload[1]) | (payload[0] & payload[1]));
        break;
      }
      default: {  // Read-back check of a random touched word.
        p.rqst = spec::Rqst::RD16;
        Status s = sim->send(p, 0);
        ASSERT_TRUE(s.ok());
        sim::Response rsp;
        int guard = 0;
        while (!sim->rsp_ready(0) && guard++ < 100) {
          sim->clock();
        }
        ASSERT_TRUE(sim->recv(0, rsp).ok());
        EXPECT_EQ(rsp.pkt.payload()[0], oracle.read_u64(addr16))
            << "op " << op << " addr " << addr16;
        EXPECT_EQ(rsp.pkt.payload()[1], oracle.read_u64(addr16 + 8));
        continue;
      }
    }
    roundtrip(p);
  }

  // Final sweep: every byte the oracle knows about must match the device.
  // (Read via the back door; the pipeline was already validated inline.)
  for (const auto& [addr, value] : oracle.bytes()) {
    std::array<std::uint8_t, 1> got{};
    ASSERT_TRUE(sim->mem_read(0, addr, got).ok());
    ASSERT_EQ(got[0], value) << "final state diverged at 0x" << std::hex
                             << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, ConsistencyTest,
    ::testing::Values(
        StreamParams{0xA11CE, 400, sim::Config::hmc_4link_4gb(),
                     "seed_a11ce_4link"},
        StreamParams{0xB0B, 400, sim::Config::hmc_8link_8gb(),
                     "seed_b0b_8link"},
        StreamParams{0xC0DE, 400, sim::Config::hmc_4link_2gb(),
                     "seed_c0de_2gb"},
        StreamParams{0xD00D, 1000, sim::Config::hmc_8link_4gb(),
                     "seed_d00d_long"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace hmcsim
