// fault_injection_test.cpp — link-error injection and the retry protocol.
//
// Every workload must complete correctly under injected CRC failures: a
// corrupted packet is redelivered by the link layer, costing latency but
// never data. These tests also pin the determinism of the injection
// stream and the zero-overhead property of the disabled path.
#include <gtest/gtest.h>

#include <array>

#include "plugins/builtin.h"
#include "src/host/kernels/random_access.hpp"
#include "src/mem/fault.hpp"
#include "src/host/mutex_driver.hpp"
#include "src/sim/sim_stats.hpp"
#include "src/sim/simulator.hpp"

namespace hmcsim {
namespace {

sim::Config faulty_config(std::uint32_t ppm) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = ppm;
  return cfg;
}

TEST(FaultInjection, ConfigValidation) {
  sim::Config cfg = faulty_config(2'000'000);
  EXPECT_FALSE(cfg.validate().ok());
  cfg = faulty_config(1000);
  cfg.link_retry_latency = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.link_retry_latency = 8;
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(FaultInjection, CorruptedPacketIsRedeliveredWithExtraLatency) {
  // 100% FLIT error rate: the request retries once on the way in and the
  // response retries once on the way out (replays bypass re-injection, so
  // each direction corrupts exactly once per packet).
  sim::Config cfg = faulty_config(1'000'000);
  cfg.link_retry_latency = 8;
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  ASSERT_TRUE(sim->send(rd, 0).ok());
  int guard = 0;
  while (!sim->rsp_ready(0) && guard++ < 100) {
    sim->clock();
  }
  sim::Response rsp;
  ASSERT_TRUE(sim->recv(0, rsp).ok());
  // Inbound: retry delay (8) minus the link stage the packet already
  // completed (redelivery re-enters at the crossbar), then the 3-cycle
  // round trip. Outbound: the response corrupts at the link and replays
  // a full retry delay (8) later. 8-1 + 3 + 8 = 18.
  EXPECT_EQ(rsp.latency, 8U - 1U + 3U + 8U);
  EXPECT_EQ(sim::collect_stats(*sim).link_retries, 2U);
}

TEST(FaultInjection, ZeroRateMatchesBaselineExactly) {
  auto run = [](std::uint32_t ppm) {
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(faulty_config(ppm), sim).ok());
    std::uint64_t total_latency = 0;
    for (int i = 0; i < 50; ++i) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD16;
      rd.addr = 64ULL * static_cast<std::uint64_t>(i);
      rd.tag = static_cast<std::uint16_t>(i);
      EXPECT_TRUE(sim->send(rd, static_cast<std::uint32_t>(i % 4)).ok());
      while (!sim->rsp_ready(static_cast<std::uint32_t>(i % 4))) {
        sim->clock();
      }
      sim::Response rsp;
      EXPECT_TRUE(sim->recv(static_cast<std::uint32_t>(i % 4), rsp).ok());
      total_latency += rsp.latency;
    }
    return total_latency;
  };
  EXPECT_EQ(run(0), 50U * 3U);
}

TEST(FaultInjection, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Config cfg = faulty_config(200'000);  // 20% per FLIT.
    cfg.link_error_seed = seed;
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(cfg, sim).ok());
    for (int i = 0; i < 100; ++i) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD16;
      rd.addr = 64ULL * static_cast<std::uint64_t>(i % 32);
      rd.tag = static_cast<std::uint16_t>(i);
      EXPECT_TRUE(sim->send(rd, 0).ok());
      while (!sim->rsp_ready(0)) {
        sim->clock();
      }
      sim::Response rsp;
      EXPECT_TRUE(sim->recv(0, rsp).ok());
    }
    return sim::collect_stats(*sim).link_retries;
  };
  const std::uint64_t a = run(7);
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a, 0U);
}

TEST(FaultInjection, GupsCompletesAndVerifiesUnderErrors) {
  sim::Config cfg = faulty_config(50'000);  // 5% per FLIT.
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  host::RandomAccessOptions opts;
  opts.table_words = 1 << 10;
  opts.updates = 512;
  opts.mode = host::GupsMode::Atomic;
  host::KernelResult result;
  // verify=true: data integrity under fault injection.
  ASSERT_TRUE(host::run_random_access(*sim, opts, result).ok());
  EXPECT_GT(sim::collect_stats(*sim).link_retries, 0U);
}

TEST(FaultInjection, MutexContentionSurvivesErrors) {
  sim::Config cfg = faulty_config(20'000);  // 2% per FLIT.
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_lock_register,
                                hmcsim_builtin_lock_execute,
                                hmcsim_builtin_lock_str).ok());
  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_trylock_register,
                                hmcsim_builtin_trylock_execute,
                                hmcsim_builtin_trylock_str).ok());
  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_unlock_register,
                                hmcsim_builtin_unlock_execute,
                                hmcsim_builtin_unlock_str).ok());
  host::MutexResult result;
  ASSERT_TRUE(host::run_mutex_contention(*sim, 24, {}, result).ok());
  // Mutual exclusion held: the lock ends free.
  std::array<std::uint64_t, 2> lock{};
  ASSERT_TRUE(sim->device(0).store().read_u128(0, lock).ok());
  EXPECT_EQ(lock[0], 0ULL);
  EXPECT_GT(sim::collect_stats(*sim).link_retries, 0U);
}

TEST(FaultInjection, ErrorsIncreaseAverageLatency) {
  auto avg_latency = [](std::uint32_t ppm) {
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(faulty_config(ppm), sim).ok());
    std::uint64_t total = 0;
    for (int i = 0; i < 200; ++i) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD64;
      rd.addr = 64ULL * static_cast<std::uint64_t>(i % 64);
      EXPECT_TRUE(sim->send(rd, 0).ok());
      while (!sim->rsp_ready(0)) {
        sim->clock();
      }
      sim::Response rsp;
      EXPECT_TRUE(sim->recv(0, rsp).ok());
      total += rsp.latency;
    }
    return static_cast<double>(total) / 200.0;
  };
  EXPECT_GT(avg_latency(100'000), avg_latency(0));
}

TEST(FaultInjection, RetryTraceEventsEmitted) {
  sim::Config cfg = faulty_config(1'000'000);
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  trace::CountingSink sink;
  sim->tracer().attach(&sink);
  sim->tracer().set_level(trace::Level::Retry);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  ASSERT_TRUE(sim->send(rd, 0).ok());
  for (int i = 0; i < 20; ++i) {
    sim->clock();
  }
  // At a 100% error rate both directions corrupt and redeliver: request
  // corruption, request redelivery, response corruption, response
  // redelivery — four Retry-level events.
  EXPECT_EQ(sink.count(trace::Level::Retry), 4U);
}

TEST(FaultInjection, PerLinkResponsesArriveInSendOrder) {
  // The go-back-N guarantee: with a per-link in-order retry pipeline,
  // responses on each host link come back in send order even when packets
  // corrupt mid-stream. Each link targets a single address (one vault),
  // so any reordering could only come from the retry path overtaking.
  sim::Config cfg = faulty_config(150'000);  // 15% per FLIT.
  cfg.link_error_seed = 0xA5A5;
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  const std::uint32_t num_links = cfg.num_links;
  constexpr std::uint16_t kPerLink = 48;

  std::vector<std::vector<std::uint16_t>> arrival(num_links);
  std::uint16_t tag = 0;
  for (std::uint16_t i = 0; i < kPerLink; ++i) {
    for (std::uint32_t link = 0; link < num_links; ++link) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD16;
      rd.addr = 4096ULL * link;  // One vault per link.
      rd.tag = tag++;
      Status s = sim->send(rd, link);
      int guard = 0;
      while (s.stalled() && guard++ < 1000) {
        sim->clock();
        for (std::uint32_t l = 0; l < num_links; ++l) {
          sim::Response rsp;
          while (sim->recv(l, rsp).ok()) {
            arrival[l].push_back(rsp.pkt.tag());
          }
        }
        s = sim->send(rd, link);
      }
      ASSERT_TRUE(s.ok()) << s.to_string();
    }
  }
  for (int i = 0; i < 2000; ++i) {
    sim->clock();
    for (std::uint32_t l = 0; l < num_links; ++l) {
      sim::Response rsp;
      while (sim->recv(l, rsp).ok()) {
        arrival[l].push_back(rsp.pkt.tag());
      }
    }
  }
  ASSERT_GT(sim::collect_stats(*sim).link_retries, 0U);
  for (std::uint32_t l = 0; l < num_links; ++l) {
    ASSERT_EQ(arrival[l].size(), kPerLink) << "link " << l;
    // Tags on link l were issued as l, l+num_links, l+2*num_links, ...;
    // in-order delivery means strictly increasing tags per link.
    for (std::size_t i = 1; i < arrival[l].size(); ++i) {
      EXPECT_LT(arrival[l][i - 1], arrival[l][i])
          << "response reordered on link " << l;
    }
  }
}

TEST(FaultInjection, CorruptedFlowPacketIsDropped) {
  // Flow packets travel the same wire as everything else; at a 100% error
  // rate a TRET corrupts and is dropped (never consumed, never retried).
  sim::Config cfg = faulty_config(1'000'000);
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  spec::RqstParams tret;
  tret.rqst = spec::Rqst::TRET;
  ASSERT_TRUE(sim->send(tret, 0).ok());
  const auto& link = sim->device(0).links()[0];
  EXPECT_EQ(link.flow_packets().value(), 0U);
  EXPECT_EQ(link.flow_drops().value(), 1U);
  // With injection disabled the same packet is consumed normally.
  std::unique_ptr<sim::Simulator> clean;
  ASSERT_TRUE(sim::Simulator::create(faulty_config(0), clean).ok());
  ASSERT_TRUE(clean->send(tret, 0).ok());
  EXPECT_EQ(clean->device(0).links()[0].flow_packets().value(), 1U);
  EXPECT_EQ(clean->device(0).links()[0].flow_drops().value(), 0U);
}

TEST(FaultInjection, RetryBufferGaugeDrainsToZero) {
  sim::Config cfg = faulty_config(300'000);
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  for (int i = 0; i < 32; ++i) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 64ULL * static_cast<std::uint64_t>(i);
    rd.tag = static_cast<std::uint16_t>(i);
    ASSERT_TRUE(sim->send(rd, 0).ok());
  }
  (void)sim->clock_until_idle(100000);
  sim::Response rsp;
  while (sim->recv(0, rsp).ok()) {
  }
  ASSERT_GT(sim::collect_stats(*sim).link_retries, 0U);
  // Everything delivered: no FLITs left parked in any retry buffer.
  for (const auto& link : sim->device(0).links()) {
    EXPECT_EQ(link.retry_buffered().value(), 0.0);
  }
}

// ---- DRAM faults: SEC-DED ECC, poison propagation, patrol scrub ----------

/// Faults enabled for manual injection: no random transients, one seeded
/// stuck-at cell (lost somewhere in 4 GB) just to arm the subsystem.
sim::Config dram_fault_config(std::uint32_t scrub_interval = 1024) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.stuck_faults = 1;
  cfg.dram_fault_seed = 0xD1;
  cfg.scrub_interval = scrub_interval;
  return cfg;
}

sim::Response wait_response(sim::Simulator& sim, std::uint32_t link) {
  int guard = 0;
  while (!sim.rsp_ready(link) && guard++ < 1000) {
    sim.clock();
  }
  sim::Response rsp;
  EXPECT_TRUE(sim.recv(link, rsp).ok());
  return rsp;
}

TEST(DramFault, UncorrectableReadReturnsDinvWithZeroedPayload) {
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(dram_fault_config(), sim).ok());
  sim->device(0).fault().inject_transient(0x100, 0b11);  // beyond SEC-DED

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  ASSERT_TRUE(sim->send(rd, 0).ok());
  const sim::Response rsp = wait_response(*sim, 0);
  EXPECT_EQ(rsp.pkt.errstat(), 7U);  // DINV
  EXPECT_TRUE(rsp.pkt.payload().empty());  // never silent corruption
  const auto& m = sim->metrics();
  EXPECT_EQ(m.find_counter("cube0.ecc.uncorrectable")->value(), 1U);
  EXPECT_EQ(m.find_counter("cube0.ecc.poison_returned")->value(), 1U);
}

TEST(DramFault, SingleBitCorrectedReturnsTrueData) {
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(dram_fault_config(), sim).ok());

  spec::RqstParams wr;
  wr.rqst = spec::Rqst::WR16;
  wr.addr = 0x500;
  const std::array<std::uint64_t, 2> data{0xABCD, 0x1234};
  wr.payload = data;
  ASSERT_TRUE(sim->send(wr, 0).ok());
  (void)wait_response(*sim, 0);

  sim->device(0).fault().inject_transient(0x500, 1ULL << 13);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x500;
  rd.tag = 1;
  ASSERT_TRUE(sim->send(rd, 0).ok());
  const sim::Response rsp = wait_response(*sim, 0);
  EXPECT_EQ(rsp.pkt.errstat(), 0U);
  ASSERT_EQ(rsp.pkt.payload().size(), 2U);
  EXPECT_EQ(rsp.pkt.payload()[0], 0xABCDULL);  // store holds TRUE data
  EXPECT_EQ(rsp.pkt.payload()[1], 0x1234ULL);
  EXPECT_EQ(sim->metrics().find_counter("cube0.ecc.corrected")->value(),
            1U);
}

TEST(DramFault, PoisonedCmcReadCompletesAsDinvWithoutQuarantineStrike) {
  // A CMC plugin consuming poisoned data is not at fault: the host sees
  // ERRSTAT DINV, the plugin sees the guarded EPOISON error, and the
  // fault-containment machinery records no failure strike.
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(dram_fault_config(), sim).ok());
  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_lock_register,
                                hmcsim_builtin_lock_execute,
                                hmcsim_builtin_lock_str).ok());
  sim->device(0).fault().inject_transient(0x2000, 0b101);

  spec::RqstParams lock;
  lock.rqst = spec::Rqst::CMC125;
  lock.addr = 0x2000;
  const std::array<std::uint64_t, 2> tid{42, 0};
  lock.payload = tid;
  ASSERT_TRUE(sim->send(lock, 0).ok());
  const sim::Response poisoned = wait_response(*sim, 0);
  EXPECT_EQ(poisoned.pkt.errstat(), 7U);  // DINV, not CMC-failed
  const auto& m = sim->metrics();
  EXPECT_EQ(m.find_counter("cmc.hmc_lock.failures")->value(), 0U);
  EXPECT_EQ(m.find_counter("cube0.ecc.poison_returned")->value(), 1U);

  // The slot is not quarantined: a clean-address lock still executes.
  spec::RqstParams clean = lock;
  clean.addr = 0x4000;
  clean.tag = 1;
  ASSERT_TRUE(sim->send(clean, 0).ok());
  const sim::Response ok = wait_response(*sim, 0);
  EXPECT_EQ(ok.pkt.errstat(), 0U);
  ASSERT_FALSE(ok.pkt.payload().empty());
  EXPECT_EQ(ok.pkt.payload()[0], 1ULL);  // lock acquired
}

TEST(DramFault, PostedWriteToStuckCellDoesNotSpinTheScrubber) {
  // A posted write re-dirties a permanent stuck-at cell. The patrol
  // scrubber must visit it exactly once and give up — not re-arm every
  // interval — or the active scheduler would never quiesce again.
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(dram_fault_config(/*scrub=*/64),
                                     sim).ok());
  mem::FaultInjector& fault = sim->device(0).fault();
  const std::uint64_t bit = 1ULL << 7;
  fault.inject_stuck(0x300, bit, bit);

  spec::RqstParams wr;
  wr.rqst = spec::Rqst::P_WR16;
  wr.addr = 0x300;
  const std::array<std::uint64_t, 2> data{0, 0};
  wr.payload = data;
  ASSERT_TRUE(sim->send(wr, 0).ok());

  // Quiesce: the write retires, the scrubber drains its dirty set (the
  // injected cell plus the seeded one), and the simulation goes idle
  // long before the guard.
  const std::uint64_t end = sim->clock_until_idle(100000);
  EXPECT_LT(end, 100000U);
  EXPECT_EQ(fault.pending_scrub_work(), 0U);
  const auto& m = sim->metrics();
  EXPECT_GE(m.find_counter("cube0.ecc.scrub_stuck")->value(), 2U);
  // The stuck bit still reads back as an error the store cannot fix...
  EXPECT_EQ(fault.read_error_bits(0, 0x300, 0, sim->cycle()), bit);
  // ...but was never reported as a poisoned response (writes don't read).
  EXPECT_EQ(m.find_counter("cube0.ecc.poison_returned")->value(), 0U);
}

}  // namespace
}  // namespace hmcsim
