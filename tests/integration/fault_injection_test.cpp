// fault_injection_test.cpp — link-error injection and the retry protocol.
//
// Every workload must complete correctly under injected CRC failures: a
// corrupted packet is redelivered by the link layer, costing latency but
// never data. These tests also pin the determinism of the injection
// stream and the zero-overhead property of the disabled path.
#include <gtest/gtest.h>

#include <array>

#include "plugins/builtin.h"
#include "src/host/kernels/random_access.hpp"
#include "src/host/mutex_driver.hpp"
#include "src/sim/simulator.hpp"

namespace hmcsim {
namespace {

sim::Config faulty_config(std::uint32_t ppm) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = ppm;
  return cfg;
}

TEST(FaultInjection, ConfigValidation) {
  sim::Config cfg = faulty_config(2'000'000);
  EXPECT_FALSE(cfg.validate().ok());
  cfg = faulty_config(1000);
  cfg.link_retry_latency = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.link_retry_latency = 8;
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(FaultInjection, CorruptedPacketIsRedeliveredWithExtraLatency) {
  // 100% FLIT error rate: every packet retries exactly once (the retry
  // path bypasses re-injection, as the redelivered packet was already
  // error-checked).
  sim::Config cfg = faulty_config(1'000'000);
  cfg.link_retry_latency = 8;
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  ASSERT_TRUE(sim->send(rd, 0).ok());
  int guard = 0;
  while (!sim->rsp_ready(0) && guard++ < 100) {
    sim->clock();
  }
  sim::Response rsp;
  ASSERT_TRUE(sim->recv(0, rsp).ok());
  // Round trip (3) + retry delay (8), minus the link stage the packet
  // already completed before the corruption was detected: redelivery
  // re-enters at the crossbar.
  EXPECT_EQ(rsp.latency, 3U + 8U - 1U);
  EXPECT_EQ(sim->stats().link_retries, 1U);
}

TEST(FaultInjection, ZeroRateMatchesBaselineExactly) {
  auto run = [](std::uint32_t ppm) {
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(faulty_config(ppm), sim).ok());
    std::uint64_t total_latency = 0;
    for (int i = 0; i < 50; ++i) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD16;
      rd.addr = 64ULL * static_cast<std::uint64_t>(i);
      rd.tag = static_cast<std::uint16_t>(i);
      EXPECT_TRUE(sim->send(rd, static_cast<std::uint32_t>(i % 4)).ok());
      while (!sim->rsp_ready(static_cast<std::uint32_t>(i % 4))) {
        sim->clock();
      }
      sim::Response rsp;
      EXPECT_TRUE(sim->recv(static_cast<std::uint32_t>(i % 4), rsp).ok());
      total_latency += rsp.latency;
    }
    return total_latency;
  };
  EXPECT_EQ(run(0), 50U * 3U);
}

TEST(FaultInjection, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Config cfg = faulty_config(200'000);  // 20% per FLIT.
    cfg.link_error_seed = seed;
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(cfg, sim).ok());
    for (int i = 0; i < 100; ++i) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD16;
      rd.addr = 64ULL * static_cast<std::uint64_t>(i % 32);
      rd.tag = static_cast<std::uint16_t>(i);
      EXPECT_TRUE(sim->send(rd, 0).ok());
      while (!sim->rsp_ready(0)) {
        sim->clock();
      }
      sim::Response rsp;
      EXPECT_TRUE(sim->recv(0, rsp).ok());
    }
    return sim->stats().link_retries;
  };
  const std::uint64_t a = run(7);
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a, 0U);
}

TEST(FaultInjection, GupsCompletesAndVerifiesUnderErrors) {
  sim::Config cfg = faulty_config(50'000);  // 5% per FLIT.
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  host::RandomAccessOptions opts;
  opts.table_words = 1 << 10;
  opts.updates = 512;
  opts.mode = host::GupsMode::Atomic;
  host::KernelResult result;
  // verify=true: data integrity under fault injection.
  ASSERT_TRUE(host::run_random_access(*sim, opts, result).ok());
  EXPECT_GT(sim->stats().link_retries, 0U);
}

TEST(FaultInjection, MutexContentionSurvivesErrors) {
  sim::Config cfg = faulty_config(20'000);  // 2% per FLIT.
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_lock_register,
                                hmcsim_builtin_lock_execute,
                                hmcsim_builtin_lock_str).ok());
  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_trylock_register,
                                hmcsim_builtin_trylock_execute,
                                hmcsim_builtin_trylock_str).ok());
  ASSERT_TRUE(sim->register_cmc(hmcsim_builtin_unlock_register,
                                hmcsim_builtin_unlock_execute,
                                hmcsim_builtin_unlock_str).ok());
  host::MutexResult result;
  ASSERT_TRUE(host::run_mutex_contention(*sim, 24, {}, result).ok());
  // Mutual exclusion held: the lock ends free.
  std::array<std::uint64_t, 2> lock{};
  ASSERT_TRUE(sim->device(0).store().read_u128(0, lock).ok());
  EXPECT_EQ(lock[0], 0ULL);
  EXPECT_GT(sim->stats().link_retries, 0U);
}

TEST(FaultInjection, ErrorsIncreaseAverageLatency) {
  auto avg_latency = [](std::uint32_t ppm) {
    std::unique_ptr<sim::Simulator> sim;
    EXPECT_TRUE(sim::Simulator::create(faulty_config(ppm), sim).ok());
    std::uint64_t total = 0;
    for (int i = 0; i < 200; ++i) {
      spec::RqstParams rd;
      rd.rqst = spec::Rqst::RD64;
      rd.addr = 64ULL * static_cast<std::uint64_t>(i % 64);
      EXPECT_TRUE(sim->send(rd, 0).ok());
      while (!sim->rsp_ready(0)) {
        sim->clock();
      }
      sim::Response rsp;
      EXPECT_TRUE(sim->recv(0, rsp).ok());
      total += rsp.latency;
    }
    return static_cast<double>(total) / 200.0;
  };
  EXPECT_GT(avg_latency(100'000), avg_latency(0));
}

TEST(FaultInjection, RetryTraceEventsEmitted) {
  sim::Config cfg = faulty_config(1'000'000);
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(sim::Simulator::create(cfg, sim).ok());
  trace::CountingSink sink;
  sim->tracer().attach(&sink);
  sim->tracer().set_level(trace::Level::Retry);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  ASSERT_TRUE(sim->send(rd, 0).ok());
  for (int i = 0; i < 20; ++i) {
    sim->clock();
  }
  EXPECT_EQ(sink.count(trace::Level::Retry), 1U);
}

}  // namespace
}  // namespace hmcsim
