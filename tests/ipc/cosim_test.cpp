// cosim_test.cpp — co-simulation server, SPSC rings, and the C client.
//
// The in-process tests run a real CosimServer (own thread, real POSIX
// shm + Unix socket) against the C client library, exactly as separate
// processes would; the determinism test then replays the same workload
// through a bare Session and demands byte-identical statistics JSON.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/backend/backend.hpp"
#include "src/capi/hmc_cosim_client.h"
#include "src/ipc/cosim_proto.h"
#include "src/ipc/cosim_server.hpp"
#include "src/sim/session.hpp"
#include "src/sim/stats_report.hpp"

namespace hmcsim::ipc {
namespace {

constexpr std::uint32_t kWr64 = 11;  // spec::Rqst::WR64
constexpr std::uint32_t kRd64 = 51;  // spec::Rqst::RD64

// ---- ring unit tests ------------------------------------------------------

struct RingBuffer {
  explicit RingBuffer(std::uint32_t slots) : slots_(slots) {
    const std::size_t bytes = hmc_cosim_ring_bytes(slots);
    mem_ = ::operator new(bytes, std::align_val_t{64});
    std::memset(mem_, 0, bytes);
  }
  ~RingBuffer() { ::operator delete(mem_, std::align_val_t{64}); }
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  hmc_cosim_ring_t* ring() { return static_cast<hmc_cosim_ring_t*>(mem_); }
  std::uint32_t slots() const { return slots_; }

 private:
  std::uint32_t slots_;
  void* mem_ = nullptr;
};

TEST(CosimRing, FifoOrderAcrossWraparound) {
  RingBuffer buf(4);
  hmc_cosim_msg_t msg{};
  for (std::uint32_t round = 0; round < 3; ++round) {  // wraps twice
    for (std::uint32_t i = 0; i < 4; ++i) {
      msg.type = HMC_COSIM_MSG_SEND;
      msg.tag = static_cast<std::uint16_t>(round * 4 + i);
      ASSERT_EQ(hmc_cosim_ring_push(buf.ring(), buf.slots(), &msg), 1);
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
      ASSERT_EQ(hmc_cosim_ring_pop(buf.ring(), buf.slots(), &msg), 1);
      EXPECT_EQ(msg.tag, round * 4 + i);
    }
  }
}

TEST(CosimRing, FullRejectsPushEmptyRejectsPop) {
  RingBuffer buf(2);
  hmc_cosim_msg_t msg{};
  EXPECT_EQ(hmc_cosim_ring_pop(buf.ring(), buf.slots(), &msg), 0);
  EXPECT_EQ(hmc_cosim_ring_push(buf.ring(), buf.slots(), &msg), 1);
  EXPECT_EQ(hmc_cosim_ring_push(buf.ring(), buf.slots(), &msg), 1);
  EXPECT_EQ(hmc_cosim_ring_push(buf.ring(), buf.slots(), &msg), 0);
  EXPECT_EQ(hmc_cosim_ring_pop(buf.ring(), buf.slots(), &msg), 1);
  EXPECT_EQ(hmc_cosim_ring_push(buf.ring(), buf.slots(), &msg), 1);
}

TEST(CosimRing, PayloadSurvivesRoundTrip) {
  RingBuffer buf(8);
  hmc_cosim_msg_t in{};
  in.type = HMC_COSIM_MSG_RSP;
  in.addr = 0xDEADBEEF;
  in.arg = 42;
  in.payload_words = HMC_COSIM_PAYLOAD_WORDS;
  for (std::uint32_t w = 0; w < HMC_COSIM_PAYLOAD_WORDS; ++w) {
    in.payload[w] = 0x1111111111111111ull * w;
  }
  ASSERT_EQ(hmc_cosim_ring_push(buf.ring(), buf.slots(), &in), 1);
  hmc_cosim_msg_t out{};
  ASSERT_EQ(hmc_cosim_ring_pop(buf.ring(), buf.slots(), &out), 1);
  EXPECT_EQ(std::memcmp(&in, &out, sizeof(in)), 0);
}

// ---- in-process server fixture -------------------------------------------

std::string unique_socket(const char* name) {
  return "/tmp/hmcsim-cosim-test-" + std::to_string(::getpid()) + "-" + name +
         ".sock";
}

std::unique_ptr<backend::MemoryBackend> make_backend() {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  std::unique_ptr<backend::MemoryBackend> mem;
  EXPECT_TRUE(backend::BackendRegistry::instance().create("hmc", cfg, mem).ok());
  return mem;
}

/// A server on its own thread; joins and reports serve()'s Status.
struct ServerThread {
  ServerThread(backend::MemoryBackend& mem, CosimOptions opts)
      : server(mem, opts) {
    bind_status = server.bind();
    if (bind_status.ok()) {
      thread = std::thread([this] { serve_status = server.serve(); });
    }
  }
  ~ServerThread() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
  }
  void join() {
    if (thread.joinable()) {
      thread.join();
    }
  }

  CosimServer server;
  Status bind_status = Status::Ok();
  Status serve_status = Status::Ok();
  std::thread thread;
};

std::uint64_t pattern_word(std::uint32_t slot, std::uint32_t i,
                           std::uint32_t w) {
  return (static_cast<std::uint64_t>(slot) << 32) | (i * 8 + w);
}

/// Barrier-clock and drain until `received` reaches `want`; bounded.
void drain_until(hmc_cosim_t* c, std::uint32_t slot, std::uint32_t total,
                 std::uint32_t want, std::uint32_t& received,
                 std::uint32_t& rounds) {
  const std::uint64_t quantum = hmc_cosim_quantum(c);
  std::uint64_t payload[HMC_COSIM_PAYLOAD_WORDS];
  std::uint32_t guard = 0;
  while (received < want && guard++ < 10000) {
    EXPECT_EQ(hmc_cosim_clock(c, quantum), HMC_COSIM_OK);
    ++rounds;
    std::uint8_t cmd = 0;
    std::uint16_t tag = 0;
    std::uint64_t latency = 0;
    std::uint32_t words = HMC_COSIM_PAYLOAD_WORDS;
    while (hmc_cosim_recv(c, &cmd, &tag, payload, &words, &latency) ==
           HMC_COSIM_OK) {
      EXPECT_GT(latency, 0u);
      if (words == 8) {  // RD64 data: reads back the phase-1 write
        const std::uint32_t i = static_cast<std::uint32_t>(tag) - total;
        for (std::uint32_t w = 0; w < 8; ++w) {
          EXPECT_EQ(payload[w], pattern_word(slot, i, w));
        }
      }
      ++received;
      words = HMC_COSIM_PAYLOAD_WORDS;
    }
  }
}

/// One client's workload, two phases so reads never race their writes:
/// `total` WR64 round-robin over the links (slot-private 1 MiB window),
/// drain all write responses, then `total` RD64 of the same addresses,
/// each read checked against what its write stored. Returns responses
/// received; reports the clock barriers each phase took.
std::uint32_t run_client_workload(const std::string& socket,
                                  std::uint32_t slot, std::uint32_t total,
                                  std::uint32_t* barriers1 = nullptr,
                                  std::uint32_t* barriers2 = nullptr) {
  hmc_cosim_t* c = hmc_cosim_connect(socket.c_str(), slot, 10000);
  if (c == nullptr) {
    ADD_FAILURE() << "client " << slot << " failed to connect";
    return 0;
  }
  const std::uint32_t links = hmc_cosim_num_links(c);
  const std::uint64_t window = static_cast<std::uint64_t>(slot) << 20;

  std::uint64_t payload[HMC_COSIM_PAYLOAD_WORDS];
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::uint64_t addr = window + static_cast<std::uint64_t>(i) * 512;
    for (std::uint32_t w = 0; w < 8; ++w) {
      payload[w] = pattern_word(slot, i, w);
    }
    EXPECT_EQ(hmc_cosim_send(c, i % links, kWr64, 0, addr,
                             static_cast<std::uint16_t>(i & 0x7FF), payload, 8),
              HMC_COSIM_OK);
  }
  std::uint32_t received = 0;
  std::uint32_t rounds = 0;
  drain_until(c, slot, total, total, received, rounds);
  if (barriers1 != nullptr) {
    *barriers1 = rounds;
  }

  rounds = 0;
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::uint64_t addr = window + static_cast<std::uint64_t>(i) * 512;
    EXPECT_EQ(hmc_cosim_send(c, i % links, kRd64, 0, addr,
                             static_cast<std::uint16_t>((total + i) & 0x7FF),
                             nullptr, 0),
              HMC_COSIM_OK);
  }
  drain_until(c, slot, total, 2 * total, received, rounds);
  if (barriers2 != nullptr) {
    *barriers2 = rounds;
  }
  EXPECT_GT(hmc_cosim_cycle(c), 0u);
  hmc_cosim_disconnect(c);
  return received;
}

TEST(CosimServerTest, ConnectTimesOutWithoutServer) {
  EXPECT_EQ(hmc_cosim_connect("/tmp/hmcsim-no-such-server.sock", 0, 50),
            nullptr);
}

TEST(CosimServerTest, BindRejectsBadGeometry) {
  auto mem = make_backend();
  CosimOptions opts;
  opts.socket_path = unique_socket("badgeom");
  opts.ring_slots = 1;  // below the 2-slot minimum
  CosimServer server(*mem, opts);
  EXPECT_FALSE(server.bind().ok());
}

TEST(CosimServerTest, SingleClientRoundTrip) {
  auto mem = make_backend();
  CosimOptions opts;
  opts.socket_path = unique_socket("single");
  opts.expected_clients = 1;
  opts.quantum = 32;
  ServerThread st(*mem, opts);
  ASSERT_TRUE(st.bind_status.ok()) << st.bind_status.to_string();

  const std::uint32_t got = run_client_workload(opts.socket_path, 0, 64);
  st.join();
  ASSERT_TRUE(st.serve_status.ok()) << st.serve_status.to_string();
  EXPECT_EQ(got, 128u);
  EXPECT_EQ(st.server.requests(), 128u);
  EXPECT_EQ(st.server.responses(), 128u);
  EXPECT_GT(st.server.quanta(), 0u);
}

TEST(CosimServerTest, TwoClientsShareOneSimulation) {
  auto mem = make_backend();
  CosimOptions opts;
  opts.socket_path = unique_socket("pair");
  opts.expected_clients = 2;
  opts.quantum = 32;
  ServerThread st(*mem, opts);
  ASSERT_TRUE(st.bind_status.ok()) << st.bind_status.to_string();

  std::uint32_t got0 = 0;
  std::uint32_t got1 = 0;
  std::thread t0([&] { got0 = run_client_workload(opts.socket_path, 0, 48); });
  std::thread t1([&] { got1 = run_client_workload(opts.socket_path, 1, 48); });
  t0.join();
  t1.join();
  st.join();
  ASSERT_TRUE(st.serve_status.ok()) << st.serve_status.to_string();
  EXPECT_EQ(got0, 96u);
  EXPECT_EQ(got1, 96u);
  EXPECT_EQ(st.server.requests(), 192u);
  EXPECT_EQ(st.server.responses(), 192u);
}

TEST(CosimServerTest, RecvTruncatesIntoSmallBuffer) {
  auto mem = make_backend();
  CosimOptions opts;
  opts.socket_path = unique_socket("trunc");
  opts.quantum = 32;
  ServerThread st(*mem, opts);
  ASSERT_TRUE(st.bind_status.ok()) << st.bind_status.to_string();

  hmc_cosim_t* c = hmc_cosim_connect(opts.socket_path.c_str(), 0, 10000);
  ASSERT_NE(c, nullptr);
  std::uint64_t words8[8] = {10, 11, 12, 13, 14, 15, 16, 17};
  ASSERT_EQ(hmc_cosim_send(c, 0, kWr64, 0, 0x4000, 1, words8, 8),
            HMC_COSIM_OK);
  ASSERT_EQ(hmc_cosim_send(c, 0, kRd64, 0, 0x4000, 2, nullptr, 0),
            HMC_COSIM_OK);

  std::uint32_t received = 0;
  int truncated = 0;
  for (std::uint32_t round = 0; round < 1000 && received < 2; ++round) {
    ASSERT_EQ(hmc_cosim_clock(c, opts.quantum), HMC_COSIM_OK);
    std::uint64_t small[2] = {0, 0};
    std::uint32_t words = 2;  // capacity smaller than the 8-word read data
    std::uint16_t tag = 0;
    int rc;
    while ((rc = hmc_cosim_recv(c, nullptr, &tag, small, &words, nullptr)) !=
           HMC_COSIM_NO_DATA) {
      if (rc == HMC_COSIM_ETRUNC) {
        EXPECT_EQ(tag, 2u);         // the read response carries data
        EXPECT_EQ(words, 8u);       // full size reported back
        EXPECT_EQ(small[0], 10u);   // prefix copied
        EXPECT_EQ(small[1], 11u);
        ++truncated;
      } else {
        EXPECT_EQ(rc, HMC_COSIM_OK);
      }
      ++received;
      words = 2;
    }
  }
  EXPECT_EQ(received, 2u);
  EXPECT_EQ(truncated, 1);
  hmc_cosim_disconnect(c);
  st.join();
  ASSERT_TRUE(st.serve_status.ok()) << st.serve_status.to_string();
}

// ---- client-liveness tests ------------------------------------------------

/// Handshake exactly as the C client library would, then hand back the
/// raw socket so the test can "crash" the client (close without BYE).
int raw_attach(const std::string& path, std::uint32_t slot) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
  for (int tries = 0; tries < 500; ++tries) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) ==
        0) {
      hmc_cosim_hello_t hello{HMC_COSIM_MAGIC, HMC_COSIM_VERSION, slot, 0};
      hmc_cosim_welcome_t welcome{};
      if (::write(fd, &hello, sizeof(hello)) ==
              static_cast<ssize_t>(sizeof(hello)) &&
          ::read(fd, &welcome, sizeof(welcome)) ==
              static_cast<ssize_t>(sizeof(welcome))) {
        return fd;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::close(fd);
  return -1;
}

TEST(CosimServerTest, AcceptTimesOutWhenNoClientConnects) {
  auto mem = make_backend();
  CosimOptions opts;
  opts.socket_path = unique_socket("noshow");
  opts.expected_clients = 1;
  opts.client_timeout_ms = 100;
  ServerThread st(*mem, opts);
  ASSERT_TRUE(st.bind_status.ok()) << st.bind_status.to_string();
  st.join();  // Without the timeout this would hang forever.
  EXPECT_FALSE(st.serve_status.ok());
  EXPECT_NE(st.serve_status.to_string().find("timed out"), std::string::npos)
      << st.serve_status.to_string();
}

TEST(CosimServerTest, DeadClientIsEvictedAndSurvivorCompletes) {
  auto mem = make_backend();
  CosimOptions opts;
  opts.socket_path = unique_socket("dead");
  opts.expected_clients = 2;
  opts.quantum = 32;
  opts.client_timeout_ms = 250;
  ServerThread st(*mem, opts);
  ASSERT_TRUE(st.bind_status.ok()) << st.bind_status.to_string();

  // Slot 1 attaches and then its process "crashes": the socket dies with
  // no BYE and a barrier outstanding forever.
  const int doomed = raw_attach(opts.socket_path, 1);
  ASSERT_GE(doomed, 0);
  ::close(doomed);

  // Slot 0 keeps working. Its first barrier stalls until the server's
  // no-progress deadline fires, probes slot 1's socket, and evicts it;
  // every later barrier needs only the survivor.
  const std::uint32_t got = run_client_workload(opts.socket_path, 0, 16);
  st.join();
  EXPECT_EQ(got, 32u);
  EXPECT_FALSE(st.serve_status.ok());
  const std::string err = st.serve_status.to_string();
  EXPECT_NE(err.find("evicted"), std::string::npos) << err;
  EXPECT_NE(err.find('1'), std::string::npos) << err;
}

TEST(CosimServerTest, StatsMatchDirectSessionByteForByte) {
  // Crown-jewel check: a workload driven over IPC must leave the
  // simulator in exactly the state the same workload leaves it in when
  // driven through a Session in-process — byte-identical stats JSON.
  const std::uint32_t total = 32;

  auto served = make_backend();
  CosimOptions opts;
  opts.socket_path = unique_socket("golden");
  opts.quantum = 32;
  std::uint32_t barriers1 = 0;
  std::uint32_t barriers2 = 0;
  {
    ServerThread st(*served, opts);
    ASSERT_TRUE(st.bind_status.ok()) << st.bind_status.to_string();
    const std::uint32_t got = run_client_workload(opts.socket_path, 0, total,
                                                  &barriers1, &barriers2);
    st.join();
    ASSERT_TRUE(st.serve_status.ok()) << st.serve_status.to_string();
    ASSERT_EQ(got, 2 * total);
  }
  ASSERT_GT(barriers1, 0u);
  ASSERT_GT(barriers2, 0u);
  const std::string served_json = sim::format_stats_json(*served->simulator());

  // Mirror: same requests, same admission (client-slot order = one batch
  // per maximal same-link run; here links alternate so runs are single
  // requests), same clock schedule (quantum per barrier, then idle-out).
  auto direct = make_backend();
  {
    const std::uint32_t links = direct->num_links();
    sim::Session session(*direct);
    session.set_on_complete([](sim::BatchTicket, const sim::Response&) {});
    std::uint64_t payload[8];
    for (std::uint32_t i = 0; i < total; ++i) {
      spec::RqstParams p;
      p.rqst = spec::Rqst::WR64;
      p.addr = static_cast<std::uint64_t>(i) * 512;
      p.tag = static_cast<std::uint16_t>(i & 0x7FF);
      for (std::uint32_t w = 0; w < 8; ++w) {
        payload[w] = pattern_word(0, i, w);
      }
      p.payload = {payload, 8};
      sim::BatchTicket ticket = sim::kInvalidTicket;
      ASSERT_TRUE(session.send_batch({&p, 1}, ticket, i % links).ok());
    }
    for (std::uint32_t b = 0; b < barriers1; ++b) {
      session.advance(opts.quantum);
    }
    for (std::uint32_t i = 0; i < total; ++i) {
      spec::RqstParams p;
      p.rqst = spec::Rqst::RD64;
      p.addr = static_cast<std::uint64_t>(i) * 512;
      p.tag = static_cast<std::uint16_t>((total + i) & 0x7FF);
      sim::BatchTicket ticket = sim::kInvalidTicket;
      ASSERT_TRUE(session.send_batch({&p, 1}, ticket, i % links).ok());
    }
    for (std::uint32_t b = 0; b < barriers2; ++b) {
      session.advance(opts.quantum);
    }
    direct->clock_until_idle(0);
    session.pump();
  }
  const std::string direct_json = sim::format_stats_json(*direct->simulator());
  EXPECT_EQ(served_json, direct_json);
}

}  // namespace
}  // namespace hmcsim::ipc
