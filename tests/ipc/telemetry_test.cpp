// telemetry_test.cpp — the runtime exposition endpoint.
//
// Covers the two halves separately: the renderers (Prometheus text
// format and the compact JSON snapshot) as pure functions of a registry,
// and the TelemetrySocket's accept/serve loop with a real client over a
// Unix-domain socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include "src/common/status.hpp"
#include "src/ipc/telemetry.hpp"
#include "src/metrics/exposition.hpp"
#include "src/metrics/stat_registry.hpp"

namespace hmcsim {
namespace {

TEST(Exposition, PrometheusFormat) {
  metrics::StatRegistry reg;
  reg.counter("cube0.link0.rqst_packets").inc(42);
  reg.gauge("cube0.link0.retry_buffered_flits").set(3.5);
  metrics::Histogram& h = reg.histogram("host.latency");
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h.record(v);
  }

  metrics::TelemetryInfo info;
  info.cycle = 1234;
  info.cycles_per_sec = 5.0e6;
  const std::string text = to_prometheus(reg, info);
  EXPECT_NE(text.find("# TYPE hmcsim_cycle counter\nhmcsim_cycle 1234\n"),
            std::string::npos);
  EXPECT_NE(text.find("hmcsim_cycles_per_sec 5000000"), std::string::npos);
  EXPECT_NE(
      text.find(
          "hmcsim_counter{path=\"cube0.link0.rqst_packets\"} 42"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "hmcsim_gauge{path=\"cube0.link0.retry_buffered_flits\"} 3.5"),
      std::string::npos);
  EXPECT_NE(text.find("hmcsim_histogram_count{path=\"host.latency\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  // No server stats unless the info block marks a server session.
  EXPECT_EQ(text.find("hmcsim_clients_live"), std::string::npos);
}

TEST(Exposition, PrometheusServerBlock) {
  metrics::StatRegistry reg;
  metrics::TelemetryInfo info;
  info.server = true;
  info.clients_live = 2;
  info.clients_evicted = 1;
  info.quanta = 7;
  const std::string text = to_prometheus(reg, info);
  EXPECT_NE(text.find("hmcsim_clients_live 2"), std::string::npos);
  EXPECT_NE(text.find("hmcsim_clients_evicted 1"), std::string::npos);
  EXPECT_NE(text.find("hmcsim_quanta 7"), std::string::npos);
}

TEST(Exposition, SnapshotJsonProbesCubesAndWorkers) {
  metrics::StatRegistry reg;
  reg.counter("cube0.xbar.rqsts_routed");
  reg.counter("cube0.link0.rqst_packets").inc(10);
  reg.counter("cube0.link0.rsp_packets").inc(9);
  reg.counter("cube0.link0.send_stalls").inc(2);
  reg.counter("cube0.quad0.vault3.rqsts_processed").inc(8);
  reg.counter("sim.prof.worker0.exec_ns").inc(1000);
  reg.counter("sim.prof.worker0.wait_ns").inc(200);

  metrics::TelemetryInfo info;
  info.cycle = 99;
  const std::string json = snapshot_json(reg, info);
  EXPECT_NE(json.find("\"cycle\": 99"), std::string::npos);
  EXPECT_NE(json.find("\"dev\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"rqst_packets\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"vault_rqsts\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"worker\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"exec_ns\": 1000"), std::string::npos);
  // Exactly one cube registered: no phantom cube1 in the array.
  EXPECT_EQ(json.find("\"dev\": 1"), std::string::npos);
}

/// One scrape as a client would do it: connect, send the request line,
/// read to EOF.
std::string scrape(const std::string& path, const std::string& request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string line = request + "\n";
  EXPECT_EQ(::write(fd, line.data(), line.size()),
            static_cast<ssize_t>(line.size()));
  std::string out;
  char buf[1024];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(TelemetrySocket, ServesScrapesFromPollLoop) {
  const std::string path =
      ::testing::TempDir() + "hmcsim_telemetry_test.sock";
  ::unlink(path.c_str());

  ipc::TelemetrySocket sock;
  sock.set_renderer([](std::string_view request) {
    return request == "metrics" ? std::string("PROM\n")
                                : std::string("{\"ok\": true}\n");
  });
  ASSERT_TRUE(sock.bind(path).ok());

  // The client runs on its own thread; the "simulation loop" here is
  // just a poll() spin, exactly how the cosim server drives it.
  std::atomic<bool> done{false};
  std::string prom;
  std::string json;
  std::thread client([&] {
    prom = scrape(path, "metrics");
    json = scrape(path, "json");
    done = true;
  });
  while (!done) {
    sock.poll();
  }
  client.join();
  sock.close();

  EXPECT_EQ(prom, "PROM\n");
  EXPECT_EQ(json, "{\"ok\": true}\n");
  // close() unlinks the socket path.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(TelemetrySocket, BindReplacesStaleSocket) {
  const std::string path =
      ::testing::TempDir() + "hmcsim_telemetry_stale.sock";
  {
    ipc::TelemetrySocket first;
    ASSERT_TRUE(first.bind(path).ok());
    // Simulate a crash: drop the object without close() unlinking...
  }
  // ...the destructor does unlink, so recreate a stale file by hand.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ::close(fd);

  ipc::TelemetrySocket sock;
  EXPECT_TRUE(sock.bind(path).ok());
  EXPECT_TRUE(sock.bound());
  sock.close();
  EXPECT_FALSE(sock.bound());
}

}  // namespace
}  // namespace hmcsim
