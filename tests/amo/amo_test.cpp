// amo_test.cpp — semantics of every Gen2 atomic memory operation.
#include "src/amo/amo_unit.hpp"

#include <gtest/gtest.h>

#include <array>

#include "src/common/rng.hpp"

namespace hmcsim::amo {
namespace {

using spec::Rqst;

class AmoTest : public ::testing::Test {
 protected:
  AmoTest() : store_(1024 * 1024) {}

  void seed(std::uint64_t lo, std::uint64_t hi) {
    ASSERT_TRUE(store_.write_u128(kAddr, {lo, hi}).ok());
  }
  std::array<std::uint64_t, 2> memory() {
    std::array<std::uint64_t, 2> out{};
    EXPECT_TRUE(store_.read_u128(kAddr, out).ok());
    return out;
  }
  AmoResult run(Rqst op, std::uint64_t p0 = 0, std::uint64_t p1 = 0) {
    const std::array<std::uint64_t, 2> payload{p0, p1};
    AmoResult result;
    EXPECT_TRUE(execute(op, store_, kAddr, payload, result).ok())
        << spec::to_string(op);
    return result;
  }

  static constexpr std::uint64_t kAddr = 0x1000;
  mem::BackingStore store_;
};

TEST_F(AmoTest, IsAmoClassification) {
  EXPECT_TRUE(is_amo(Rqst::INC8));
  EXPECT_TRUE(is_amo(Rqst::P_INC8));
  EXPECT_TRUE(is_amo(Rqst::CASGT16));
  EXPECT_TRUE(is_amo(Rqst::SWAP16));
  EXPECT_FALSE(is_amo(Rqst::RD16));
  EXPECT_FALSE(is_amo(Rqst::WR64));
  EXPECT_FALSE(is_amo(Rqst::CMC125));
  EXPECT_FALSE(is_amo(Rqst::FLOW_NULL));
}

TEST_F(AmoTest, RejectsNonAtomicCommand) {
  AmoResult result;
  EXPECT_FALSE(execute(Rqst::RD16, store_, kAddr, {}, result).ok());
}

TEST_F(AmoTest, RejectsOutOfRangeAddress) {
  AmoResult result;
  EXPECT_FALSE(
      execute(Rqst::INC8, store_, store_.capacity(), {}, result).ok());
}

// ---- increments ------------------------------------------------------------

TEST_F(AmoTest, Inc8IncrementsLowWordOnly) {
  seed(41, 99);
  const AmoResult r = run(Rqst::INC8);
  EXPECT_EQ(memory()[0], 42ULL);
  EXPECT_EQ(memory()[1], 99ULL);
  EXPECT_EQ(r.rsp_words, 0);  // 1-FLIT WR_RS response: no data.
}

TEST_F(AmoTest, Inc8WrapsAround) {
  seed(~0ULL, 0);
  run(Rqst::INC8);
  EXPECT_EQ(memory()[0], 0ULL);
}

TEST_F(AmoTest, PostedInc8SameEffect) {
  seed(7, 0);
  run(Rqst::P_INC8);
  EXPECT_EQ(memory()[0], 8ULL);
}

// ---- adds ---------------------------------------------------------------------

TEST_F(AmoTest, TwoAdd8AddsIndependentWords) {
  seed(100, 200);
  run(Rqst::TWOADD8, 5, 7);
  EXPECT_EQ(memory()[0], 105ULL);
  EXPECT_EQ(memory()[1], 207ULL);
}

TEST_F(AmoTest, TwoAdd8NegativeImmediates) {
  seed(100, 200);
  run(Rqst::TWOADD8, static_cast<std::uint64_t>(-30),
      static_cast<std::uint64_t>(-50));
  EXPECT_EQ(memory()[0], 70ULL);
  EXPECT_EQ(memory()[1], 150ULL);
}

TEST_F(AmoTest, TwoAdd8NoCarryBetweenWords) {
  seed(~0ULL, 0);
  run(Rqst::TWOADD8, 1, 0);
  EXPECT_EQ(memory()[0], 0ULL);
  EXPECT_EQ(memory()[1], 0ULL);  // Independent lanes: no carry.
}

TEST_F(AmoTest, Add16CarriesAcrossWords) {
  seed(~0ULL, 5);
  run(Rqst::ADD16, 1, 0);
  EXPECT_EQ(memory()[0], 0ULL);
  EXPECT_EQ(memory()[1], 6ULL);  // 128-bit add: carry propagates.
}

TEST_F(AmoTest, TwoAdds8RReturnsOriginal) {
  seed(10, 20);
  const AmoResult r = run(Rqst::TWOADDS8R, 1, 2);
  EXPECT_EQ(r.rsp_words, 2);
  EXPECT_EQ(r.rsp_data[0], 10ULL);
  EXPECT_EQ(r.rsp_data[1], 20ULL);
  EXPECT_EQ(memory()[0], 11ULL);
  EXPECT_EQ(memory()[1], 22ULL);
}

TEST_F(AmoTest, Adds16RReturnsOriginal) {
  seed(1000, 0);
  const AmoResult r = run(Rqst::ADDS16R, 24, 0);
  EXPECT_EQ(r.rsp_words, 2);
  EXPECT_EQ(r.rsp_data[0], 1000ULL);
  EXPECT_EQ(memory()[0], 1024ULL);
}

// ---- booleans -------------------------------------------------------------------

struct BoolCase {
  Rqst op;
  std::uint64_t mem;
  std::uint64_t operand;
  std::uint64_t expect;
};

class BooleanAmoTest : public ::testing::TestWithParam<BoolCase> {
 protected:
  BooleanAmoTest() : store_(1024 * 1024) {}
  mem::BackingStore store_;
};

TEST_P(BooleanAmoTest, AppliesToBothWordsAndReturnsOriginal) {
  const BoolCase& c = GetParam();
  ASSERT_TRUE(store_.write_u128(0x40, {c.mem, c.mem}).ok());
  const std::array<std::uint64_t, 2> payload{c.operand, c.operand};
  AmoResult r;
  ASSERT_TRUE(execute(c.op, store_, 0x40, payload, r).ok());
  std::array<std::uint64_t, 2> out{};
  ASSERT_TRUE(store_.read_u128(0x40, out).ok());
  EXPECT_EQ(out[0], c.expect);
  EXPECT_EQ(out[1], c.expect);
  EXPECT_EQ(r.rsp_words, 2);
  EXPECT_EQ(r.rsp_data[0], c.mem);
  EXPECT_EQ(r.rsp_data[1], c.mem);
}

INSTANTIATE_TEST_SUITE_P(
    AllBooleans, BooleanAmoTest,
    ::testing::Values(
        BoolCase{Rqst::XOR16, 0xFF00FF00FF00FF00ULL, 0x0F0F0F0F0F0F0F0FULL,
                 0xF00FF00FF00FF00FULL},
        BoolCase{Rqst::OR16, 0xF0F0F0F0F0F0F0F0ULL, 0x0F000F000F000F00ULL,
                 0xFFF0FFF0FFF0FFF0ULL},
        BoolCase{Rqst::NOR16, 0xF0F0F0F0F0F0F0F0ULL, 0x0F000F000F000F00ULL,
                 ~0xFFF0FFF0FFF0FFF0ULL},
        BoolCase{Rqst::AND16, 0xFF00FF00FF00FF00ULL, 0xF0F0F0F0F0F0F0F0ULL,
                 0xF000F000F000F000ULL},
        BoolCase{Rqst::NAND16, 0xFF00FF00FF00FF00ULL, 0xF0F0F0F0F0F0F0F0ULL,
                 ~0xF000F000F000F000ULL}),
    [](const auto& info) {
      return std::string(spec::to_string(info.param.op));
    });

// ---- compare-and-swaps --------------------------------------------------------------

TEST_F(AmoTest, CasGt8SwapsWhenGreater) {
  seed(100, 7);
  const AmoResult r = run(Rqst::CASGT8, /*swap=*/55, /*comparand=*/50);
  EXPECT_TRUE(r.atomic_flag);  // 100 > 50.
  EXPECT_EQ(memory()[0], 55ULL);
  EXPECT_EQ(memory()[1], 7ULL);  // High word untouched by 8-byte CAS.
  EXPECT_EQ(r.rsp_data[0], 100ULL);
}

TEST_F(AmoTest, CasGt8NoSwapWhenNotGreater) {
  seed(50, 0);
  const AmoResult r = run(Rqst::CASGT8, 55, 50);
  EXPECT_FALSE(r.atomic_flag);  // 50 > 50 is false.
  EXPECT_EQ(memory()[0], 50ULL);
}

TEST_F(AmoTest, CasGt8IsSignedComparison) {
  seed(static_cast<std::uint64_t>(-5), 0);
  const AmoResult r = run(Rqst::CASGT8, 1, 2);
  // -5 > 2 is false signed (would be true unsigned).
  EXPECT_FALSE(r.atomic_flag);
  EXPECT_EQ(memory()[0], static_cast<std::uint64_t>(-5));
}

TEST_F(AmoTest, CasLt8SwapsWhenLess) {
  seed(static_cast<std::uint64_t>(-10), 0);
  const AmoResult r = run(Rqst::CASLT8, 99, 0);
  EXPECT_TRUE(r.atomic_flag);  // -10 < 0 signed.
  EXPECT_EQ(memory()[0], 99ULL);
}

TEST_F(AmoTest, CasEq8SwapsOnlyOnEquality) {
  seed(42, 0);
  AmoResult r = run(Rqst::CASEQ8, 77, 42);
  EXPECT_TRUE(r.atomic_flag);
  EXPECT_EQ(memory()[0], 77ULL);
  r = run(Rqst::CASEQ8, 11, 42);  // Memory now 77 != 42.
  EXPECT_FALSE(r.atomic_flag);
  EXPECT_EQ(memory()[0], 77ULL);
}

TEST_F(AmoTest, CasGt16Uses128BitSignedCompare) {
  seed(0, 1);  // 2^64: large positive.
  AmoResult r = run(Rqst::CASGT16, 5, 0);  // Operand = 5.
  EXPECT_TRUE(r.atomic_flag);
  EXPECT_EQ(memory()[0], 5ULL);
  EXPECT_EQ(memory()[1], 0ULL);

  seed(0, ~0ULL);  // Negative 128-bit value.
  r = run(Rqst::CASGT16, 5, 0);
  EXPECT_FALSE(r.atomic_flag);  // Negative > 5 is false.
}

TEST_F(AmoTest, CasLt16SwapsWholeBlock) {
  seed(3, 0);
  const AmoResult r = run(Rqst::CASLT16, 100, 200);
  EXPECT_TRUE(r.atomic_flag);  // 3 < (200<<64|100).
  EXPECT_EQ(memory()[0], 100ULL);
  EXPECT_EQ(memory()[1], 200ULL);
}

TEST_F(AmoTest, CasZero16) {
  seed(0, 0);
  AmoResult r = run(Rqst::CASZERO16, 0xAB, 0xCD);
  EXPECT_TRUE(r.atomic_flag);
  EXPECT_EQ(memory()[0], 0xABULL);
  EXPECT_EQ(memory()[1], 0xCDULL);
  r = run(Rqst::CASZERO16, 1, 1);  // No longer zero.
  EXPECT_FALSE(r.atomic_flag);
  EXPECT_EQ(memory()[0], 0xABULL);
}

// ---- equality probes ---------------------------------------------------------------------

TEST_F(AmoTest, Eq8SetsAtomicFlagWithoutModifying) {
  seed(123, 456);
  AmoResult r = run(Rqst::EQ8, 123, 0);
  EXPECT_TRUE(r.atomic_flag);
  EXPECT_EQ(r.rsp_words, 0);  // 1-FLIT response.
  r = run(Rqst::EQ8, 124, 0);
  EXPECT_FALSE(r.atomic_flag);
  EXPECT_EQ(memory()[0], 123ULL);
  EXPECT_EQ(memory()[1], 456ULL);
}

TEST_F(AmoTest, Eq16ComparesFullBlock) {
  seed(1, 2);
  AmoResult r = run(Rqst::EQ16, 1, 2);
  EXPECT_TRUE(r.atomic_flag);
  r = run(Rqst::EQ16, 1, 3);
  EXPECT_FALSE(r.atomic_flag);
}

// ---- bit writes -------------------------------------------------------------------------------

TEST_F(AmoTest, BwrWritesOnlyMaskedBits) {
  seed(0xFFFFFFFF00000000ULL, 0x77);
  run(Rqst::BWR, /*data=*/0x0000ABCD0000EF01ULL, /*mask=*/0x0000FFFF0000FFFFULL);
  EXPECT_EQ(memory()[0], 0xFFFFABCD0000EF01ULL);
  EXPECT_EQ(memory()[1], 0x77ULL);  // High word untouched.
}

TEST_F(AmoTest, Bwr8RReturnsOriginal) {
  seed(0xAA, 0);
  const AmoResult r = run(Rqst::BWR8R, 0xFF, 0x0F);
  EXPECT_EQ(r.rsp_words, 2);
  EXPECT_EQ(r.rsp_data[0], 0xAAULL);
  EXPECT_EQ(memory()[0], 0xAFULL);  // (0xAA & ~0x0F) | (0xFF & 0x0F).
}

TEST_F(AmoTest, PostedBwrSameEffect) {
  seed(0, 0);
  run(Rqst::P_BWR, ~0ULL, 0xF0);
  EXPECT_EQ(memory()[0], 0xF0ULL);
}

// ---- swap ---------------------------------------------------------------------------------------

TEST_F(AmoTest, Swap16ExchangesAndReturnsOriginal) {
  seed(111, 222);
  const AmoResult r = run(Rqst::SWAP16, 333, 444);
  EXPECT_EQ(memory()[0], 333ULL);
  EXPECT_EQ(memory()[1], 444ULL);
  EXPECT_EQ(r.rsp_words, 2);
  EXPECT_EQ(r.rsp_data[0], 111ULL);
  EXPECT_EQ(r.rsp_data[1], 222ULL);
}

// ---- randomized differential property: AMO unit vs a scalar oracle -------

namespace {

/// Independent reimplementation of each atomic's semantics on two plain
/// 64-bit words (lo, hi). Returns the expected post-state.
std::array<std::uint64_t, 2> oracle(spec::Rqst op,
                                    std::array<std::uint64_t, 2> mem,
                                    std::uint64_t p0, std::uint64_t p1,
                                    bool& af) {
  using spec::Rqst;
  af = false;
  auto s128_less = [](const std::array<std::uint64_t, 2>& a,
                      const std::array<std::uint64_t, 2>& b) {
    const auto ah = static_cast<std::int64_t>(a[1]);
    const auto bh = static_cast<std::int64_t>(b[1]);
    return ah != bh ? ah < bh : a[0] < b[0];
  };
  const std::array<std::uint64_t, 2> imm{p0, p1};
  switch (op) {
    case Rqst::TWOADD8:
    case Rqst::P_2ADD8:
    case Rqst::TWOADDS8R:
      return {mem[0] + p0, mem[1] + p1};
    case Rqst::ADD16:
    case Rqst::P_ADD16:
    case Rqst::ADDS16R: {
      const std::uint64_t lo = mem[0] + p0;
      return {lo, mem[1] + p1 + (lo < mem[0] ? 1 : 0)};
    }
    case Rqst::INC8:
    case Rqst::P_INC8:
      return {mem[0] + 1, mem[1]};
    case Rqst::XOR16:
      return {mem[0] ^ p0, mem[1] ^ p1};
    case Rqst::OR16:
      return {mem[0] | p0, mem[1] | p1};
    case Rqst::NOR16:
      return {~(mem[0] | p0), ~(mem[1] | p1)};
    case Rqst::AND16:
      return {mem[0] & p0, mem[1] & p1};
    case Rqst::NAND16:
      return {~(mem[0] & p0), ~(mem[1] & p1)};
    case Rqst::CASGT8:
      af = static_cast<std::int64_t>(mem[0]) > static_cast<std::int64_t>(p1);
      return af ? std::array<std::uint64_t, 2>{p0, mem[1]} : mem;
    case Rqst::CASLT8:
      af = static_cast<std::int64_t>(mem[0]) < static_cast<std::int64_t>(p1);
      return af ? std::array<std::uint64_t, 2>{p0, mem[1]} : mem;
    case Rqst::CASEQ8:
      af = mem[0] == p1;
      return af ? std::array<std::uint64_t, 2>{p0, mem[1]} : mem;
    case Rqst::CASGT16:
      af = s128_less(imm, mem);
      return af ? imm : mem;
    case Rqst::CASLT16:
      af = s128_less(mem, imm);
      return af ? imm : mem;
    case Rqst::CASZERO16:
      af = mem[0] == 0 && mem[1] == 0;
      return af ? imm : mem;
    case Rqst::EQ8:
      af = mem[0] == p0;
      return mem;
    case Rqst::EQ16:
      af = mem[0] == p0 && mem[1] == p1;
      return mem;
    case Rqst::BWR:
    case Rqst::P_BWR:
    case Rqst::BWR8R:
      return {(mem[0] & ~p1) | (p0 & p1), mem[1]};
    case Rqst::SWAP16:
      return imm;
    default:
      ADD_FAILURE() << "oracle missing op";
      return mem;
  }
}

}  // namespace

TEST_F(AmoTest, RandomizedDifferentialSweepAllOps) {
  constexpr spec::Rqst kOps[] = {
      spec::Rqst::TWOADD8,  spec::Rqst::P_2ADD8, spec::Rqst::TWOADDS8R,
      spec::Rqst::ADD16,    spec::Rqst::P_ADD16, spec::Rqst::ADDS16R,
      spec::Rqst::INC8,     spec::Rqst::P_INC8,  spec::Rqst::XOR16,
      spec::Rqst::OR16,     spec::Rqst::NOR16,   spec::Rqst::AND16,
      spec::Rqst::NAND16,   spec::Rqst::CASGT8,  spec::Rqst::CASLT8,
      spec::Rqst::CASEQ8,   spec::Rqst::CASGT16, spec::Rqst::CASLT16,
      spec::Rqst::CASZERO16, spec::Rqst::EQ8,    spec::Rqst::EQ16,
      spec::Rqst::BWR,      spec::Rqst::P_BWR,   spec::Rqst::BWR8R,
      spec::Rqst::SWAP16,
  };
  Xoshiro256 rng(0xD1FF);
  for (const spec::Rqst op : kOps) {
    for (int iter = 0; iter < 64; ++iter) {
      // Mix adversarial corner values with uniform randoms.
      auto pick = [&rng]() -> std::uint64_t {
        switch (rng.below(5)) {
          case 0:
            return 0;
          case 1:
            return ~0ULL;
          case 2:
            return 1ULL << 63;
          default:
            return rng();
        }
      };
      const std::array<std::uint64_t, 2> init{pick(), pick()};
      const std::uint64_t p0 = pick();
      const std::uint64_t p1 = pick();
      seed(init[0], init[1]);
      const AmoResult r = run(op, p0, p1);

      bool expect_af = false;
      const auto expect = oracle(op, init, p0, p1, expect_af);
      EXPECT_EQ(memory(), expect)
          << spec::to_string(op) << " iter " << iter;
      EXPECT_EQ(r.atomic_flag, expect_af)
          << spec::to_string(op) << " iter " << iter;
      if (spec::command_info(op).rsp_flits == 2) {
        EXPECT_EQ(r.rsp_data, init) << spec::to_string(op);
      }
    }
  }
}

// ---- response-length contract: every atomic obeys its Table I row -------

class AmoResponseContractTest : public ::testing::TestWithParam<Rqst> {
 protected:
  AmoResponseContractTest() : store_(1024 * 1024) {}
  mem::BackingStore store_;
};

TEST_P(AmoResponseContractTest, ResponseWordsMatchCommandTable) {
  const Rqst op = GetParam();
  const std::array<std::uint64_t, 2> payload{1, 2};
  AmoResult r;
  ASSERT_TRUE(execute(op, store_, 0x80, payload, r).ok());
  const auto& info = spec::command_info(op);
  if (info.rsp_flits == 2) {
    EXPECT_EQ(r.rsp_words, 2);
  } else {
    EXPECT_EQ(r.rsp_words, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAtomics, AmoResponseContractTest,
    ::testing::Values(Rqst::TWOADD8, Rqst::ADD16, Rqst::P_2ADD8,
                      Rqst::P_ADD16, Rqst::TWOADDS8R, Rqst::ADDS16R,
                      Rqst::INC8, Rqst::P_INC8, Rqst::XOR16, Rqst::OR16,
                      Rqst::NOR16, Rqst::AND16, Rqst::NAND16, Rqst::CASGT8,
                      Rqst::CASGT16, Rqst::CASLT8, Rqst::CASLT16,
                      Rqst::CASEQ8, Rqst::CASZERO16, Rqst::EQ8, Rqst::EQ16,
                      Rqst::BWR, Rqst::P_BWR, Rqst::BWR8R, Rqst::SWAP16),
    [](const auto& info) {
      std::string name(spec::to_string(info.param));
      for (auto& ch : name) {
        if (ch == '2') {
          ch = 'D';  // gtest names must be identifiers; 2ADD8 -> DADD8.
        }
      }
      return name;
    });

}  // namespace
}  // namespace hmcsim::amo
