// cmc_loader_test.cpp — dlopen plugin loading tests against the real
// shared libraries built from plugins/.
#include "src/core/cmc_loader.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hmcsim::cmc {
namespace {

#ifdef HMCSIM_PLUGIN_DIR

std::string plugin(const std::string& name) {
  return std::string(HMCSIM_PLUGIN_DIR) + "/" + name;
}

TEST(CmcLoader, LoadsMutexTrio) {
  CmcRegistry registry;
  CmcLoader loader;
  ASSERT_TRUE(loader.load(plugin("hmc_lock.so"), registry).ok());
  ASSERT_TRUE(loader.load(plugin("hmc_trylock.so"), registry).ok());
  ASSERT_TRUE(loader.load(plugin("hmc_unlock.so"), registry).ok());
  EXPECT_EQ(loader.loaded_count(), 3U);
  EXPECT_EQ(registry.active_count(), 3U);

  const CmcOp* lock = registry.lookup(spec::Rqst::CMC125);
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->name, "hmc_lock");
  EXPECT_EQ(lock->rqst_len, 2U);
  EXPECT_EQ(lock->rsp_len, 2U);
  EXPECT_NE(lock->cmc_execute, nullptr);
  EXPECT_EQ(lock->library, 0U);

  const CmcOp* unlock = registry.lookup(spec::Rqst::CMC127);
  ASSERT_NE(unlock, nullptr);
  EXPECT_EQ(unlock->library, 2U);
}

TEST(CmcLoader, LoadsEveryShippedPlugin) {
  CmcRegistry registry;
  CmcLoader loader;
  const char* plugins[] = {"hmc_lock.so",     "hmc_trylock.so",
                           "hmc_unlock.so",   "hmc_popcnt.so",
                           "hmc_fadd_f64.so", "hmc_fetchmax.so",
                           "hmc_bloomset.so", "hmc_zero16.so",
                           "hmc_satinc.so",   "hmc_memfill.so"};
  for (const char* so : plugins) {
    ASSERT_TRUE(loader.load(plugin(so), registry).ok()) << so;
  }
  EXPECT_EQ(registry.active_count(), 10U);
  EXPECT_EQ(loader.paths().size(), 10U);

  // Spot-check distinctive registrations.
  const CmcOp* fadd = registry.lookup(spec::Rqst::CMC56);
  ASSERT_NE(fadd, nullptr);
  EXPECT_EQ(fadd->rsp_cmd, spec::ResponseType::RSP_CMC);
  EXPECT_EQ(fadd->rsp_cmd_code, 0x70);

  const CmcOp* zero = registry.lookup(spec::Rqst::CMC120);
  ASSERT_NE(zero, nullptr);
  EXPECT_TRUE(zero->posted());
  EXPECT_EQ(zero->rsp_len, 0U);
}

TEST(CmcLoader, ExecuteThroughLoadedFunctionPointer) {
  CmcRegistry registry;
  CmcLoader loader;
  ASSERT_TRUE(loader.load(plugin("hmc_popcnt.so"), registry).ok());
  const CmcOp* op = registry.lookup(spec::Rqst::CMC32);
  ASSERT_NE(op, nullptr);

  // Memory fake: the popcount plugin reads one 16-byte block.
  static std::uint64_t mem[2] = {0xF0F0, 0x1};
  CmcContext ctx;
  ctx.user = nullptr;
  ctx.mem_read = [](void*, std::uint32_t, std::uint64_t, std::uint64_t* data,
                    std::uint32_t nwords) {
    for (std::uint32_t i = 0; i < nwords; ++i) {
      data[i] = mem[i];
    }
    return Status::Ok();
  };
  ctx.mem_write = nullptr;

  CmcExecResult result;
  ASSERT_TRUE(
      registry.execute(32, ctx, 0, 0, 0, 0, 0, 1, 0, 0, {}, result).ok());
  EXPECT_EQ(result.rsp_payload[0], 9ULL);  // popcount(0xF0F0) + 1.
}

TEST(CmcLoader, DuplicateLoadRejectedAndUnmapped) {
  CmcRegistry registry;
  CmcLoader loader;
  ASSERT_TRUE(loader.load(plugin("hmc_lock.so"), registry).ok());
  const Status s = loader.load(plugin("hmc_lock.so"), registry);
  EXPECT_EQ(s.code(), StatusCode::AlreadyExists);
  EXPECT_EQ(loader.loaded_count(), 1U);
  EXPECT_EQ(registry.active_count(), 1U);
}

TEST(CmcLoader, MissingLibraryFails) {
  CmcRegistry registry;
  CmcLoader loader;
  const Status s = loader.load(plugin("does_not_exist.so"), registry);
  EXPECT_EQ(s.code(), StatusCode::LoadError);
  EXPECT_EQ(loader.loaded_count(), 0U);
  EXPECT_EQ(registry.active_count(), 0U);
}

TEST(CmcLoader, NonPluginLibraryFailsSymbolResolution) {
  // libhmcsim_plugins_builtin.a is not a shared object; use the test
  // binary's own path? Instead: load a real .so that lacks the symbols —
  // use the C library, which every Linux system maps.
  CmcRegistry registry;
  CmcLoader loader;
  const Status s = loader.load("libm.so.6", registry);
  // Either the dlopen fails (unusual) or — the expected path — symbol
  // resolution fails. Both must surface as LoadError without leaking.
  EXPECT_EQ(s.code(), StatusCode::LoadError);
  EXPECT_EQ(loader.loaded_count(), 0U);
}

#else
TEST(CmcLoader, DISABLED_PluginsUnavailable) {
  GTEST_SKIP() << "HMCSIM_PLUGIN_DIR not defined";
}
#endif

}  // namespace
}  // namespace hmcsim::cmc
