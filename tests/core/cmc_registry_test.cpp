// cmc_registry_test.cpp — CMC slot table tests: registration validation,
// 70-slot capacity, lookup, execution plumbing and the C service functions.
#include "src/core/cmc_registry.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "plugins/builtin.h"

namespace hmcsim::cmc {
namespace {

// ---- configurable fake plugin --------------------------------------------
// The registration callback has no user context (it is a C ABI), so the
// fake reads its answers from these globals. Each test resets them.
struct FakeSpec {
  hmc_rqst_t rqst = HMC_CMC44;
  std::uint32_t cmd = 44;
  std::uint32_t rqst_len = 2;
  std::uint32_t rsp_len = 2;
  hmc_response_t rsp_cmd = HMC_RD_RS;
  std::uint8_t rsp_cmd_code = 0;
  int register_rc = 0;
  int execute_rc = 0;
};
FakeSpec g_fake;
int g_execute_calls = 0;

int fake_register(hmc_rqst_t* rqst, std::uint32_t* cmd,
                  std::uint32_t* rqst_len, std::uint32_t* rsp_len,
                  hmc_response_t* rsp_cmd, std::uint8_t* rsp_cmd_code) {
  *rqst = g_fake.rqst;
  *cmd = g_fake.cmd;
  *rqst_len = g_fake.rqst_len;
  *rsp_len = g_fake.rsp_len;
  *rsp_cmd = g_fake.rsp_cmd;
  *rsp_cmd_code = g_fake.rsp_cmd_code;
  return g_fake.register_rc;
}

int fake_execute(void* hmc, std::uint32_t, std::uint32_t, std::uint32_t,
                 std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t,
                 std::uint64_t, std::uint64_t* rqst_payload,
                 std::uint64_t* rsp_payload) {
  ++g_execute_calls;
  if (rsp_payload != nullptr && rqst_payload != nullptr) {
    rsp_payload[0] = rqst_payload[0] + 1;  // Observable transformation.
  }
  (void)hmcsim_cmc_set_af(hmc, 1);
  return g_fake.execute_rc;
}

void fake_str(char* out) {
  std::strncpy(out, "fake_op", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

// Sequential registration helper for the 70-slot capacity test.
std::size_t g_seq_index = 0;
int seq_register(hmc_rqst_t* rqst, std::uint32_t* cmd,
                 std::uint32_t* rqst_len, std::uint32_t* rsp_len,
                 hmc_response_t* rsp_cmd, std::uint8_t* rsp_cmd_code) {
  const spec::Rqst code = spec::all_cmc_commands()[g_seq_index++];
  *rqst = static_cast<hmc_rqst_t>(code);
  *cmd = static_cast<std::uint32_t>(code);
  *rqst_len = 1;
  *rsp_len = 1;
  *rsp_cmd = HMC_WR_RS;
  *rsp_cmd_code = 0;
  return 0;
}

class CmcRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake = FakeSpec{};
    g_execute_calls = 0;
    g_seq_index = 0;
  }
  CmcRegistry registry_;
};

TEST_F(CmcRegistryTest, StartsEmpty) {
  EXPECT_EQ(registry_.active_count(), 0U);
  EXPECT_EQ(registry_.slots().size(), 70U);
  for (const CmcOp& slot : registry_.slots()) {
    EXPECT_FALSE(slot.active);
    EXPECT_TRUE(spec::is_cmc(slot.rqst));
  }
}

TEST_F(CmcRegistryTest, RegisterActivatesSlot) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  EXPECT_EQ(registry_.active_count(), 1U);
  const CmcOp* op = registry_.lookup(std::uint8_t{44});
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->name, "fake_op");
  EXPECT_EQ(op->cmd, 44U);
  EXPECT_EQ(op->rqst_len, 2U);
  EXPECT_EQ(op->rsp_len, 2U);
  EXPECT_EQ(op->rsp_cmd, spec::ResponseType::RD_RS);
  EXPECT_FALSE(op->posted());
  EXPECT_EQ(op->response_code(), 0x38);
}

TEST_F(CmcRegistryTest, RejectsNullFunctions) {
  EXPECT_FALSE(registry_.register_op(nullptr, fake_execute, fake_str).ok());
  EXPECT_FALSE(registry_.register_op(fake_register, nullptr, fake_str).ok());
  EXPECT_FALSE(
      registry_.register_op(fake_register, fake_execute, nullptr).ok());
  EXPECT_EQ(registry_.active_count(), 0U);
}

TEST_F(CmcRegistryTest, RejectsPluginRegistrationFailure) {
  g_fake.register_rc = -1;
  EXPECT_EQ(registry_.register_op(fake_register, fake_execute, fake_str)
                .code(),
            StatusCode::CmcError);
}

TEST_F(CmcRegistryTest, RejectsCmdEnumMismatch) {
  g_fake.cmd = 45;  // rqst says 44.
  EXPECT_EQ(registry_.register_op(fake_register, fake_execute, fake_str)
                .code(),
            StatusCode::InvalidArg);
}

TEST_F(CmcRegistryTest, RejectsNonCmcCode) {
  g_fake.rqst = HMC_WR16;
  g_fake.cmd = 8;
  EXPECT_EQ(registry_.register_op(fake_register, fake_execute, fake_str)
                .code(),
            StatusCode::InvalidArg);
}

TEST_F(CmcRegistryTest, RejectsBadLengths) {
  g_fake.rqst_len = 0;
  EXPECT_FALSE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_fake.rqst_len = 18;
  EXPECT_FALSE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_fake.rqst_len = 2;
  g_fake.rsp_len = 18;
  EXPECT_FALSE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
}

TEST_F(CmcRegistryTest, RejectsPostedInconsistency) {
  // rsp_len == 0 demands RSP_NONE...
  g_fake.rsp_len = 0;
  g_fake.rsp_cmd = HMC_RD_RS;
  EXPECT_FALSE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  // ...and RSP_NONE demands rsp_len == 0.
  g_fake.rsp_len = 2;
  g_fake.rsp_cmd = HMC_RSP_NONE;
  EXPECT_FALSE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
}

TEST_F(CmcRegistryTest, RejectsDuplicateSlot) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  EXPECT_EQ(registry_.register_op(fake_register, fake_execute, fake_str)
                .code(),
            StatusCode::AlreadyExists);
  EXPECT_EQ(registry_.active_count(), 1U);
}

TEST_F(CmcRegistryTest, UnregisterFreesSlot) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  ASSERT_TRUE(registry_.unregister_op(spec::Rqst::CMC44).ok());
  EXPECT_EQ(registry_.active_count(), 0U);
  EXPECT_EQ(registry_.lookup(spec::Rqst::CMC44), nullptr);
  // Slot is reusable.
  EXPECT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
}

TEST_F(CmcRegistryTest, UnregisterErrors) {
  EXPECT_EQ(registry_.unregister_op(spec::Rqst::CMC44).code(),
            StatusCode::NotFound);
  EXPECT_EQ(registry_.unregister_op(spec::Rqst::WR16).code(),
            StatusCode::InvalidArg);
}

TEST_F(CmcRegistryTest, LookupNonCmcCodesIsNull) {
  EXPECT_EQ(registry_.lookup(std::uint8_t{8}), nullptr);    // WR16.
  EXPECT_EQ(registry_.lookup(std::uint8_t{200}), nullptr);  // Out of range.
}

TEST_F(CmcRegistryTest, AllSeventySlotsLoadConcurrently) {
  // The paper: "The CMC infrastructure has the ability to load up to
  // seventy disparate operations concurrently."
  for (std::size_t i = 0; i < spec::kNumCmcCodes; ++i) {
    ASSERT_TRUE(
        registry_.register_op(seq_register, fake_execute, fake_str).ok())
        << "slot " << i;
  }
  EXPECT_EQ(registry_.active_count(), 70U);
  for (const spec::Rqst rqst : spec::all_cmc_commands()) {
    EXPECT_NE(registry_.lookup(rqst), nullptr);
  }
  // The 71st registration has nowhere to go: every code is taken.
  g_seq_index = 0;
  EXPECT_EQ(registry_.register_op(seq_register, fake_execute, fake_str)
                .code(),
            StatusCode::AlreadyExists);
}

TEST_F(CmcRegistryTest, ClearDeactivatesEverything) {
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        registry_.register_op(seq_register, fake_execute, fake_str).ok());
  }
  registry_.clear();
  EXPECT_EQ(registry_.active_count(), 0U);
}

TEST_F(CmcRegistryTest, ExecuteInactiveIsError) {
  CmcContext ctx;
  CmcExecResult result;
  EXPECT_EQ(registry_
                .execute(44, ctx, 0, 0, 0, 0, 0x100, 2, 0, 0, {}, result)
                .code(),
            StatusCode::NotFound);
}

TEST_F(CmcRegistryTest, ExecuteRunsPluginAndCollectsResult) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  CmcContext ctx;
  CmcExecResult result;
  std::uint64_t payload[2] = {41, 0};
  ASSERT_TRUE(registry_
                  .execute(44, ctx, 0, 1, 2, 3, 0x100, 2, 0, 0,
                           {payload, 2}, result)
                  .ok());
  EXPECT_EQ(g_execute_calls, 1);
  EXPECT_EQ(result.rsp_payload[0], 42ULL);
  EXPECT_EQ(result.rsp_words, 2U);
  EXPECT_TRUE(result.atomic_flag);       // Set via hmcsim_cmc_set_af.
  EXPECT_EQ(ctx.current, nullptr);       // Unwired after the call.
}

TEST_F(CmcRegistryTest, ExecuteFailurePropagates) {
  g_fake.execute_rc = -7;
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  CmcContext ctx;
  CmcExecResult result;
  std::uint64_t payload[2] = {0, 0};
  EXPECT_EQ(registry_
                .execute(44, ctx, 0, 0, 0, 0, 0x100, 2, 0, 0, {payload, 2},
                         result)
                .code(),
            StatusCode::CmcError);
}

TEST_F(CmcRegistryTest, CustomResponseCodeSurfaces) {
  g_fake.rqst = HMC_CMC56;
  g_fake.cmd = 56;
  g_fake.rsp_cmd = HMC_RSP_CMC;
  g_fake.rsp_cmd_code = 0x70;
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  const CmcOp* op = registry_.lookup(std::uint8_t{56});
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->rsp_cmd, spec::ResponseType::RSP_CMC);
  EXPECT_EQ(op->response_code(), 0x70);
}

// ---- C service functions ---------------------------------------------------

Status vec_mem_read(void* user, std::uint32_t, std::uint64_t addr,
                    std::uint64_t* data, std::uint32_t nwords) {
  auto* mem = static_cast<std::vector<std::uint64_t>*>(user);
  for (std::uint32_t i = 0; i < nwords; ++i) {
    data[i] = (*mem)[addr / 8 + i];
  }
  return Status::Ok();
}

Status vec_mem_write(void* user, std::uint32_t, std::uint64_t addr,
                     const std::uint64_t* data, std::uint32_t nwords) {
  auto* mem = static_cast<std::vector<std::uint64_t>*>(user);
  for (std::uint32_t i = 0; i < nwords; ++i) {
    (*mem)[addr / 8 + i] = data[i];
  }
  return Status::Ok();
}

TEST(CmcServices, MemReadWriteThroughContext) {
  std::vector<std::uint64_t> mem(16, 0);
  mem[2] = 0xAB;
  CmcContext ctx;
  ctx.user = &mem;
  ctx.mem_read = vec_mem_read;
  ctx.mem_write = vec_mem_write;

  std::uint64_t value = 0;
  EXPECT_EQ(hmcsim_cmc_mem_read(&ctx, 0, 16, &value, 1), 0);
  EXPECT_EQ(value, 0xABULL);

  const std::uint64_t out = 0xCD;
  EXPECT_EQ(hmcsim_cmc_mem_write(&ctx, 0, 24, &out, 1), 0);
  EXPECT_EQ(mem[3], 0xCDULL);
}

TEST(CmcServices, NullArgumentsRejected) {
  CmcContext ctx;
  std::uint64_t v = 0;
  EXPECT_NE(hmcsim_cmc_mem_read(nullptr, 0, 0, &v, 1), 0);
  EXPECT_NE(hmcsim_cmc_mem_read(&ctx, 0, 0, nullptr, 1), 0);
  EXPECT_NE(hmcsim_cmc_mem_read(&ctx, 0, 0, &v, 1), 0);  // No callback.
  EXPECT_NE(hmcsim_cmc_set_af(nullptr, 1), 0);
  EXPECT_NE(hmcsim_cmc_set_af(&ctx, 1), 0);  // No in-flight execution.
  EXPECT_NE(hmcsim_cmc_trace(nullptr, "x"), 0);
  EXPECT_NE(hmcsim_cmc_trace(&ctx, nullptr), 0);
}

TEST(CmcServices, TraceAnnotationThroughContext) {
  static std::string captured;
  captured.clear();
  CmcContext ctx;
  ctx.user = nullptr;
  ctx.trace = [](void*, const char* msg) { captured = msg; };
  EXPECT_EQ(hmcsim_cmc_trace(&ctx, "hello from a plugin"), 0);
  EXPECT_EQ(captured, "hello from a plugin");
  // Without a trace callback, annotations are silently droppable.
  ctx.trace = nullptr;
  EXPECT_EQ(hmcsim_cmc_trace(&ctx, "dropped"), 0);
}

TEST(CmcServices, BuiltinMutexRegistrationsAreWellFormed) {
  CmcRegistry registry;
  ASSERT_TRUE(registry
                  .register_op(hmcsim_builtin_lock_register,
                               hmcsim_builtin_lock_execute,
                               hmcsim_builtin_lock_str)
                  .ok());
  ASSERT_TRUE(registry
                  .register_op(hmcsim_builtin_trylock_register,
                               hmcsim_builtin_trylock_execute,
                               hmcsim_builtin_trylock_str)
                  .ok());
  ASSERT_TRUE(registry
                  .register_op(hmcsim_builtin_unlock_register,
                               hmcsim_builtin_unlock_execute,
                               hmcsim_builtin_unlock_str)
                  .ok());
  // Table V: codes 125/126/127, 2-FLIT requests, 2-FLIT responses, with
  // WR_RS / RD_RS / WR_RS response commands respectively.
  const CmcOp* lock = registry.lookup(spec::Rqst::CMC125);
  const CmcOp* trylock = registry.lookup(spec::Rqst::CMC126);
  const CmcOp* unlock = registry.lookup(spec::Rqst::CMC127);
  ASSERT_NE(lock, nullptr);
  ASSERT_NE(trylock, nullptr);
  ASSERT_NE(unlock, nullptr);
  EXPECT_EQ(lock->name, "hmc_lock");
  EXPECT_EQ(trylock->name, "hmc_trylock");
  EXPECT_EQ(unlock->name, "hmc_unlock");
  for (const CmcOp* op : {lock, trylock, unlock}) {
    EXPECT_EQ(op->rqst_len, 2U);
    EXPECT_EQ(op->rsp_len, 2U);
  }
  EXPECT_EQ(lock->rsp_cmd, spec::ResponseType::WR_RS);
  EXPECT_EQ(trylock->rsp_cmd, spec::ResponseType::RD_RS);
  EXPECT_EQ(unlock->rsp_cmd, spec::ResponseType::WR_RS);
}

}  // namespace
}  // namespace hmcsim::cmc
