// cmc_quarantine_test.cpp — CMC fault-containment tests: the execute
// guard (exceptions, payload overruns, trampoline-flagged misuse, memory
// budgets), the consecutive-failure quarantine state machine, the rearm
// path, name hardening, the trampoline error codes and the per-op fault
// metrics. The loader's ABI handshake is tested against the real fixture
// plugins when HMCSIM_PLUGIN_DIR is available.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/cmc_loader.hpp"
#include "src/core/cmc_registry.hpp"
#include "src/metrics/stat_registry.hpp"

namespace hmcsim::cmc {
namespace {

// ---- configurable fake plugin --------------------------------------------
// Registration callbacks cross a C ABI (no user context), so the fake
// reads its behaviour from these globals. Each test resets them.
enum class Behaviour {
  kSucceed,
  kFail,            // Return nonzero.
  kThrow,           // Throw across the C ABI.
  kOverrun,         // Write past the registered response length.
  kTamperWords,     // Rewrite CmcExecResult::rsp_words through the context.
  kNullRead,        // hmcsim_cmc_mem_read with a null buffer.
  kOversizedRead,   // nwords > HMCSIM_CMC_MEM_MAX_WORDS.
  kGreedyRead,      // Read until the budget refuses, then return 0.
};
Behaviour g_behaviour = Behaviour::kSucceed;
int g_last_service_rc = 0;

int fake_register(hmc_rqst_t* rqst, std::uint32_t* cmd,
                  std::uint32_t* rqst_len, std::uint32_t* rsp_len,
                  hmc_response_t* rsp_cmd, std::uint8_t* rsp_cmd_code) {
  *rqst = HMC_CMC44;
  *cmd = 44;
  *rqst_len = 2;
  *rsp_len = 2;
  *rsp_cmd = HMC_RD_RS;
  *rsp_cmd_code = 0;
  return 0;
}

int fake_execute(void* hmc, std::uint32_t, std::uint32_t, std::uint32_t,
                 std::uint32_t, std::uint64_t addr, std::uint32_t,
                 std::uint64_t, std::uint64_t, std::uint64_t*,
                 std::uint64_t* rsp_payload) {
  static std::uint64_t scratch[8];
  switch (g_behaviour) {
    case Behaviour::kSucceed:
      rsp_payload[0] = addr;
      return 0;
    case Behaviour::kFail:
      return -1;
    case Behaviour::kThrow:
      throw std::runtime_error("escaping the C ABI");
    case Behaviour::kOverrun:
      // Registered rsp_len=2 owns words [0,2); word 2 is canary land.
      rsp_payload[2] = 0xB0B0B0B0ULL;
      return 0;
    case Behaviour::kTamperWords:
      static_cast<CmcContext*>(hmc)->current->rsp_words = 30;
      return 0;
    case Behaviour::kNullRead:
      g_last_service_rc = hmcsim_cmc_mem_read(hmc, 0, addr, nullptr, 1);
      return 0;
    case Behaviour::kOversizedRead:
      g_last_service_rc = hmcsim_cmc_mem_read(hmc, 0, addr, scratch,
                                              HMCSIM_CMC_MEM_MAX_WORDS + 1);
      return 0;
    case Behaviour::kGreedyRead:
      for (int i = 0; i < 1024; ++i) {
        g_last_service_rc = hmcsim_cmc_mem_read(hmc, 0, addr, scratch, 8);
        if (g_last_service_rc != HMCSIM_CMC_OK) {
          break;
        }
      }
      return 0;
  }
  return 0;
}

void fake_str(char* out) {
  std::strncpy(out, "fake_op", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

// Name-hardening fakes: one fills the whole buffer with printable bytes
// and no terminator, one emits control characters, one writes nothing.
void garbage_str_unterminated(char* out) {
  std::memset(out, 'A', HMCSIM_CMC_STR_MAX);
}
void garbage_str_nonprintable(char* out) {
  out[0] = 'o';
  out[1] = 'k';
  out[2] = '\x01';
  out[3] = '\0';
}
void garbage_str_empty(char* out) { (void)out; }

Status ok_mem_read(void*, std::uint32_t, std::uint64_t, std::uint64_t* data,
                   std::uint32_t nwords) {
  for (std::uint32_t i = 0; i < nwords; ++i) {
    data[i] = 7;
  }
  return Status::Ok();
}

struct FaultEvent {
  std::string op;
  std::string what;
};

class CmcQuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_behaviour = Behaviour::kSucceed;
    g_last_service_rc = 0;
    ctx_.user = &events_;
    ctx_.mem_read = ok_mem_read;
    ctx_.fault = [](void* user, const char* op, const char* what) {
      static_cast<std::vector<FaultEvent>*>(user)->push_back(
          {std::string(op), std::string(what)});
    };
  }

  Status run_once() {
    std::uint64_t payload[2] = {0, 0};
    return registry_.execute(44, ctx_, 0, 0, 0, 0, 0x100, 2, 0, 0,
                             {payload, 2}, result_);
  }

  CmcRegistry registry_;
  CmcContext ctx_;
  CmcExecResult result_;
  std::vector<FaultEvent> events_;
};

TEST_F(CmcQuarantineTest, ConsecutiveFailuresQuarantineSlot) {
  registry_.set_fault_policy({.fail_threshold = 3, .mem_word_budget = 0});
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kFail;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run_once().code(), StatusCode::CmcError) << "failure " << i;
  }
  // Threshold reached: regular lookups skip the slot...
  EXPECT_EQ(registry_.lookup(spec::Rqst::CMC44), nullptr);
  // ...but the registration survives for host-side packet shaping...
  const CmcOp* op = registry_.lookup_registered(spec::Rqst::CMC44);
  ASSERT_NE(op, nullptr);
  EXPECT_TRUE(op->quarantined);
  // ...and execute takes the inactive (NotFound -> errstat_cmc_inactive)
  // path without calling the plugin.
  EXPECT_EQ(run_once().code(), StatusCode::NotFound);
  // The quarantine transition was announced through the fault hook.
  ASSERT_FALSE(events_.empty());
  EXPECT_EQ(events_.back().op, "fake_op");
  EXPECT_NE(events_.back().what.find("quarantined"), std::string::npos);
}

TEST_F(CmcQuarantineTest, SuccessResetsFailureStreak) {
  registry_.set_fault_policy({.fail_threshold = 3, .mem_word_budget = 0});
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kFail;
  EXPECT_FALSE(run_once().ok());
  EXPECT_FALSE(run_once().ok());
  g_behaviour = Behaviour::kSucceed;
  EXPECT_TRUE(run_once().ok());  // Streak back to zero.
  g_behaviour = Behaviour::kFail;
  EXPECT_FALSE(run_once().ok());
  EXPECT_FALSE(run_once().ok());
  EXPECT_NE(registry_.lookup(spec::Rqst::CMC44), nullptr);  // Still live.
  EXPECT_FALSE(run_once().ok());                            // Third strike.
  EXPECT_EQ(registry_.lookup(spec::Rqst::CMC44), nullptr);
}

TEST_F(CmcQuarantineTest, ZeroThresholdNeverQuarantines) {
  registry_.set_fault_policy({.fail_threshold = 0, .mem_word_budget = 0});
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kFail;
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(run_once().code(), StatusCode::CmcError);
  }
  EXPECT_NE(registry_.lookup(spec::Rqst::CMC44), nullptr);
}

TEST_F(CmcQuarantineTest, RearmRestoresExecution) {
  registry_.set_fault_policy({.fail_threshold = 2, .mem_word_budget = 0});
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kFail;
  EXPECT_FALSE(run_once().ok());
  EXPECT_FALSE(run_once().ok());
  EXPECT_EQ(registry_.lookup(spec::Rqst::CMC44), nullptr);

  ASSERT_TRUE(registry_.rearm(spec::Rqst::CMC44).ok());
  EXPECT_NE(registry_.lookup(spec::Rqst::CMC44), nullptr);
  g_behaviour = Behaviour::kSucceed;
  EXPECT_TRUE(run_once().ok());
  EXPECT_EQ(result_.rsp_payload[0], 0x100ULL);
}

TEST_F(CmcQuarantineTest, RearmErrors) {
  EXPECT_EQ(registry_.rearm(spec::Rqst::WR16).code(), StatusCode::InvalidArg);
  EXPECT_EQ(registry_.rearm(spec::Rqst::CMC44).code(), StatusCode::NotFound);
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  EXPECT_EQ(registry_.rearm(spec::Rqst::CMC44).code(),
            StatusCode::InvalidState);  // Active but not quarantined.
}

TEST_F(CmcQuarantineTest, ExceptionAcrossCAbiIsContained) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kThrow;
  EXPECT_EQ(run_once().code(), StatusCode::CmcError);
  ASSERT_FALSE(events_.empty());
  EXPECT_NE(events_.back().what.find("exception"), std::string::npos);
  // The context is unwired even on the throwing path.
  EXPECT_EQ(ctx_.current, nullptr);
  EXPECT_EQ(ctx_.call, nullptr);
}

TEST_F(CmcQuarantineTest, PayloadOverrunCaughtByCanary) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kOverrun;
  EXPECT_EQ(run_once().code(), StatusCode::CmcError);
  ASSERT_FALSE(events_.empty());
  EXPECT_NE(events_.back().what.find("overran"), std::string::npos);
  // The tainted payload never reaches the caller.
  EXPECT_EQ(result_.rsp_words, 0U);
  for (const std::uint64_t w : result_.rsp_payload) {
    EXPECT_EQ(w, 0ULL);
  }
}

TEST_F(CmcQuarantineTest, RspWordsTamperingCaught) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kTamperWords;
  EXPECT_EQ(run_once().code(), StatusCode::CmcError);
  ASSERT_FALSE(events_.empty());
  EXPECT_NE(events_.back().what.find("word count"), std::string::npos);
}

TEST_F(CmcQuarantineTest, NullReadIsViolationEvenWhenPluginReturnsZero) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kNullRead;
  EXPECT_EQ(run_once().code(), StatusCode::CmcError);
  EXPECT_EQ(g_last_service_rc, HMCSIM_CMC_EINVAL);
}

TEST_F(CmcQuarantineTest, OversizedReadIsViolation) {
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kOversizedRead;
  EXPECT_EQ(run_once().code(), StatusCode::CmcError);
  EXPECT_EQ(g_last_service_rc, HMCSIM_CMC_EINVAL);
}

TEST_F(CmcQuarantineTest, MemoryBudgetRefusesAndFailsTheCall) {
  registry_.set_fault_policy({.fail_threshold = 8, .mem_word_budget = 20});
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kGreedyRead;
  EXPECT_EQ(run_once().code(), StatusCode::CmcError);
  // 8-word reads against a 20-word budget: two succeed, the third is
  // refused without being performed.
  EXPECT_EQ(g_last_service_rc, HMCSIM_CMC_EBUDGET);
}

TEST_F(CmcQuarantineTest, DisabledBudgetAllowsLargeTransfers) {
  registry_.set_fault_policy({.fail_threshold = 8, .mem_word_budget = 0});
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());
  g_behaviour = Behaviour::kGreedyRead;
  EXPECT_TRUE(run_once().ok());  // All 1024 reads succeed.
  EXPECT_EQ(g_last_service_rc, HMCSIM_CMC_OK);
}

TEST_F(CmcQuarantineTest, FaultMetricsTrackFailuresAndQuarantine) {
  metrics::StatRegistry stats;
  registry_.attach_metrics(stats);
  registry_.set_fault_policy({.fail_threshold = 2, .mem_word_budget = 64});
  ASSERT_TRUE(
      registry_.register_op(fake_register, fake_execute, fake_str).ok());

  const metrics::Counter* failures = stats.find_counter("cmc.fake_op.failures");
  const metrics::Counter* violations =
      stats.find_counter("cmc.fake_op.guard_violations");
  const metrics::Counter* words_read =
      stats.find_counter("cmc.fake_op.mem_words_read");
  const metrics::Gauge* quarantined =
      stats.find_gauge("cmc.fake_op.quarantined");
  ASSERT_NE(failures, nullptr);
  ASSERT_NE(violations, nullptr);
  ASSERT_NE(words_read, nullptr);
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->value(), 0.0);

  g_behaviour = Behaviour::kFail;  // Plain failure: no violation.
  EXPECT_FALSE(run_once().ok());
  EXPECT_EQ(failures->value(), 1U);
  EXPECT_EQ(violations->value(), 0U);

  g_behaviour = Behaviour::kGreedyRead;  // Budget bust: violation.
  EXPECT_FALSE(run_once().ok());
  EXPECT_EQ(failures->value(), 2U);
  EXPECT_EQ(violations->value(), 1U);
  EXPECT_EQ(words_read->value(), 64U);  // Only the granted reads count.
  EXPECT_EQ(quarantined->value(), 1.0);  // Threshold of 2 reached.

  ASSERT_TRUE(registry_.rearm(spec::Rqst::CMC44).ok());
  EXPECT_EQ(quarantined->value(), 0.0);
}

// ---- name hardening --------------------------------------------------------

TEST(CmcNameHardening, UnterminatedGarbageIsBoundedAndAccepted) {
  CmcRegistry registry;
  ASSERT_TRUE(
      registry.register_op(fake_register, fake_execute,
                           garbage_str_unterminated)
          .ok());
  const CmcOp* op = registry.lookup(spec::Rqst::CMC44);
  ASSERT_NE(op, nullptr);
  // Force-terminated at the last buffer byte: 63 'A's, printable, bounded.
  EXPECT_EQ(op->name.size(), HMCSIM_CMC_STR_MAX - 1);
  EXPECT_EQ(op->name, std::string(HMCSIM_CMC_STR_MAX - 1, 'A'));
}

TEST(CmcNameHardening, NonPrintableNameRejected) {
  CmcRegistry registry;
  EXPECT_EQ(registry
                .register_op(fake_register, fake_execute,
                             garbage_str_nonprintable)
                .code(),
            StatusCode::InvalidArg);
  EXPECT_EQ(registry.active_count(), 0U);
}

TEST(CmcNameHardening, EmptyNameRejected) {
  CmcRegistry registry;
  EXPECT_EQ(
      registry.register_op(fake_register, fake_execute, garbage_str_empty)
          .code(),
      StatusCode::InvalidArg);
}

// ---- trampoline error codes ------------------------------------------------

TEST(CmcServiceCodes, DocumentedErrnoValues) {
  CmcContext ctx;  // No services wired, no call in flight.
  std::uint64_t v = 0;
  EXPECT_EQ(hmcsim_cmc_mem_read(nullptr, 0, 0, &v, 1), HMCSIM_CMC_EINVAL);
  EXPECT_EQ(hmcsim_cmc_mem_read(&ctx, 0, 0, nullptr, 1), HMCSIM_CMC_EINVAL);
  EXPECT_EQ(hmcsim_cmc_mem_read(&ctx, 0, 0, &v, 0), HMCSIM_CMC_EINVAL);
  EXPECT_EQ(hmcsim_cmc_mem_read(&ctx, 0, 0, &v, 1), HMCSIM_CMC_ENOSVC);
  EXPECT_EQ(hmcsim_cmc_mem_write(nullptr, 0, 0, &v, 1), HMCSIM_CMC_EINVAL);
  EXPECT_EQ(hmcsim_cmc_mem_write(&ctx, 0, 0, &v, 1), HMCSIM_CMC_ENOSVC);
  EXPECT_EQ(hmcsim_cmc_set_af(nullptr, 1), HMCSIM_CMC_EINVAL);
  EXPECT_EQ(hmcsim_cmc_set_af(&ctx, 1), HMCSIM_CMC_ENOCALL);
  EXPECT_EQ(hmcsim_cmc_trace(nullptr, "x"), HMCSIM_CMC_EINVAL);
  EXPECT_EQ(hmcsim_cmc_trace(&ctx, nullptr), HMCSIM_CMC_EINVAL);
  EXPECT_EQ(hmcsim_cmc_trace(&ctx, "ok"), HMCSIM_CMC_OK);

  // EFAULT: a wired mem service that reports failure.
  ctx.mem_read = [](void*, std::uint32_t, std::uint64_t, std::uint64_t*,
                    std::uint32_t) { return Status::Internal("bad address"); };
  EXPECT_EQ(hmcsim_cmc_mem_read(&ctx, 0, 0, &v, 1), HMCSIM_CMC_EFAULT);
}

// ---- loader ABI handshake --------------------------------------------------

#ifdef HMCSIM_PLUGIN_DIR

std::string plugin(const std::string& name) {
  return std::string(HMCSIM_PLUGIN_DIR) + "/" + name;
}

TEST(CmcAbiHandshake, MismatchedVersionRejected) {
  CmcRegistry registry;
  CmcLoader loader;
  const Status s = loader.load(plugin("hmc_abi_mismatch.so"), registry);
  EXPECT_EQ(s.code(), StatusCode::LoadError);
  EXPECT_NE(s.message().find("ABI version"), std::string::npos);
  EXPECT_EQ(loader.loaded_count(), 0U);
  EXPECT_EQ(registry.active_count(), 0U);  // Registration never ran.
}

TEST(CmcAbiHandshake, LegacyPluginWithoutSymbolStillLoads) {
  CmcRegistry registry;
  CmcLoader loader;
  ASSERT_TRUE(loader.load(plugin("hmc_legacy_noabi.so"), registry).ok());
  EXPECT_NE(registry.lookup(spec::Rqst::CMC73), nullptr);
}

TEST(CmcAbiHandshake, CurrentPluginsCarryTheVersionSymbol) {
  CmcRegistry registry;
  CmcLoader loader;
  ASSERT_TRUE(loader.load(plugin("hmc_satinc.so"), registry).ok());
  EXPECT_NE(registry.lookup(spec::Rqst::CMC21), nullptr);
}

TEST(CmcAbiHandshake, RogueThrowPluginIsContainedEndToEnd) {
  CmcRegistry registry;
  CmcLoader loader;
  ASSERT_TRUE(loader.load(plugin("hmc_rogue_throw.so"), registry).ok());
  CmcContext ctx;
  CmcExecResult result;
  std::uint64_t payload[2] = {0, 0};
  EXPECT_EQ(registry
                .execute(71, ctx, 0, 0, 0, 0, 0x100, 2, 0, 0, {payload, 2},
                         result)
                .code(),
            StatusCode::CmcError);
}

#endif  // HMCSIM_PLUGIN_DIR

}  // namespace
}  // namespace hmcsim::cmc
