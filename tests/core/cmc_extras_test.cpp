// cmc_extras_test.cpp — semantics of the non-mutex example CMC operations
// through the full pipeline (popcnt, fadd_f64, fetchmax, bloomset, zero16,
// satinc, memfill).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <set>

#include "plugins/builtin.h"
#include "src/sim/simulator.hpp"

namespace hmcsim {
namespace {

class CmcExtrasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim_).ok());
    struct Op {
      hmcsim_cmc_register_fn reg;
      hmcsim_cmc_execute_fn exec;
      hmcsim_cmc_str_fn str;
    };
    const Op ops[] = {
        {hmcsim_builtin_popcnt_register, hmcsim_builtin_popcnt_execute,
         hmcsim_builtin_popcnt_str},
        {hmcsim_builtin_fadd_f64_register, hmcsim_builtin_fadd_f64_execute,
         hmcsim_builtin_fadd_f64_str},
        {hmcsim_builtin_fetchmax_register, hmcsim_builtin_fetchmax_execute,
         hmcsim_builtin_fetchmax_str},
        {hmcsim_builtin_bloomset_register, hmcsim_builtin_bloomset_execute,
         hmcsim_builtin_bloomset_str},
        {hmcsim_builtin_zero16_register, hmcsim_builtin_zero16_execute,
         hmcsim_builtin_zero16_str},
        {hmcsim_builtin_satinc_register, hmcsim_builtin_satinc_execute,
         hmcsim_builtin_satinc_str},
        {hmcsim_builtin_memfill_register, hmcsim_builtin_memfill_execute,
         hmcsim_builtin_memfill_str},
    };
    for (const Op& op : ops) {
      ASSERT_TRUE(sim_->register_cmc(op.reg, op.exec, op.str).ok());
    }
  }

  sim::Response roundtrip(spec::Rqst rqst, std::uint64_t addr,
                          std::span<const std::uint64_t> payload = {}) {
    spec::RqstParams p;
    p.rqst = rqst;
    p.addr = addr;
    p.payload = payload;
    EXPECT_TRUE(sim_->send(p, 0).ok());
    while (!sim_->rsp_ready(0)) {
      sim_->clock();
    }
    sim::Response rsp;
    EXPECT_TRUE(sim_->recv(0, rsp).ok());
    return rsp;
  }

  void post(spec::Rqst rqst, std::uint64_t addr,
            std::span<const std::uint64_t> payload = {}) {
    spec::RqstParams p;
    p.rqst = rqst;
    p.addr = addr;
    p.payload = payload;
    ASSERT_TRUE(sim_->send(p, 0).ok());
    for (int i = 0; i < 5; ++i) {
      sim_->clock();
    }
    ASSERT_FALSE(sim_->rsp_ready(0));
  }

  std::unique_ptr<sim::Simulator> sim_;
};

TEST_F(CmcExtrasTest, SevenConcurrentRegistrations) {
  EXPECT_EQ(sim_->cmc_registry().active_count(), 7U);
}

TEST_F(CmcExtrasTest, PopcntCountsBits) {
  ASSERT_TRUE(sim_->device(0).store().write_u128(0x100, {0xFF, 0x3}).ok());
  const auto rsp = roundtrip(spec::Rqst::CMC32, 0x100);
  EXPECT_EQ(rsp.pkt.payload()[0], 10ULL);
}

TEST_F(CmcExtrasTest, FaddAccumulates) {
  double x = 0.5;
  std::uint64_t raw;
  std::memcpy(&raw, &x, 8);
  std::array<std::uint64_t, 2> payload{raw, 0};
  (void)roundtrip(spec::Rqst::CMC56, 0x200, payload);
  const auto rsp = roundtrip(spec::Rqst::CMC56, 0x200, payload);
  // Second call returns the first sum (0.5) as the original value.
  double orig;
  std::memcpy(&orig, &rsp.pkt.payload()[0], 8);
  EXPECT_DOUBLE_EQ(orig, 0.5);
  std::uint64_t mem = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x200, mem).ok());
  double total;
  std::memcpy(&total, &mem, 8);
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST_F(CmcExtrasTest, FetchmaxKeepsMaximum) {
  const std::array<std::uint64_t, 2> five{5, 0};
  const std::array<std::uint64_t, 2> three{3, 0};
  const std::array<std::uint64_t, 2> neg{static_cast<std::uint64_t>(-7), 0};
  auto rsp = roundtrip(spec::Rqst::CMC60, 0x300, five);
  EXPECT_TRUE(rsp.pkt.atomic_flag());  // 5 > 0: updated.
  rsp = roundtrip(spec::Rqst::CMC60, 0x300, three);
  EXPECT_FALSE(rsp.pkt.atomic_flag());  // 3 < 5.
  EXPECT_EQ(rsp.pkt.payload()[0], 5ULL);
  rsp = roundtrip(spec::Rqst::CMC60, 0x300, neg);
  EXPECT_FALSE(rsp.pkt.atomic_flag());  // Signed comparison.
  std::uint64_t mem = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x300, mem).ok());
  EXPECT_EQ(mem, 5ULL);
}

TEST_F(CmcExtrasTest, BloomsetMembership) {
  const std::array<std::uint64_t, 2> key{0x1234567890ULL, 0};
  auto rsp = roundtrip(spec::Rqst::CMC90, 0x400, key);
  EXPECT_FALSE(rsp.pkt.atomic_flag());  // Fresh key: not present.
  rsp = roundtrip(spec::Rqst::CMC90, 0x400, key);
  EXPECT_TRUE(rsp.pkt.atomic_flag());  // Re-insert: present.
}

TEST_F(CmcExtrasTest, Zero16Posted) {
  ASSERT_TRUE(sim_->device(0).store().write_u128(0x500, {1, 2}).ok());
  post(spec::Rqst::CMC120, 0x500);
  std::array<std::uint64_t, 2> mem{9, 9};
  ASSERT_TRUE(sim_->device(0).store().read_u128(0x500, mem).ok());
  EXPECT_EQ(mem[0], 0ULL);
  EXPECT_EQ(mem[1], 0ULL);
}

TEST_F(CmcExtrasTest, SatincSticksAtMax) {
  ASSERT_TRUE(
      sim_->device(0).store().write_u64(0x600, UINT64_MAX - 1).ok());
  auto rsp = roundtrip(spec::Rqst::CMC21, 0x600);
  EXPECT_EQ(rsp.pkt.payload()[0], UINT64_MAX - 1);
  EXPECT_TRUE(rsp.pkt.atomic_flag());  // Just saturated.
  rsp = roundtrip(spec::Rqst::CMC21, 0x600);
  EXPECT_EQ(rsp.pkt.payload()[0], UINT64_MAX);
  EXPECT_TRUE(rsp.pkt.atomic_flag());
  std::uint64_t mem = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x600, mem).ok());
  EXPECT_EQ(mem, UINT64_MAX);  // Stuck, no wrap.
}

TEST_F(CmcExtrasTest, SatincNormalPath) {
  const auto rsp = roundtrip(spec::Rqst::CMC21, 0x680);
  EXPECT_EQ(rsp.pkt.payload()[0], 0ULL);
  EXPECT_FALSE(rsp.pkt.atomic_flag());
  std::uint64_t mem = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x680, mem).ok());
  EXPECT_EQ(mem, 1ULL);
}

TEST_F(CmcExtrasTest, MemfillWritesBlocks) {
  const std::array<std::uint64_t, 2> fill{0xABABABABABABABABULL, 8};
  post(spec::Rqst::CMC110, 0x1000, fill);
  for (std::uint64_t b = 0; b < 8; ++b) {
    std::array<std::uint64_t, 2> mem{};
    ASSERT_TRUE(
        sim_->device(0).store().read_u128(0x1000 + 16 * b, mem).ok());
    EXPECT_EQ(mem[0], fill[0]) << b;
    EXPECT_EQ(mem[1], fill[0]) << b;
  }
  // The block after the fill range stays untouched.
  std::array<std::uint64_t, 2> after{};
  ASSERT_TRUE(sim_->device(0).store().read_u128(0x1000 + 16 * 8, after).ok());
  EXPECT_EQ(after[0], 0ULL);
}

TEST_F(CmcExtrasTest, MemfillClampsBlockCount) {
  const std::array<std::uint64_t, 2> fill{0x11, 100000};
  post(spec::Rqst::CMC110, 0x8000, fill);
  std::uint64_t v = 0;
  ASSERT_TRUE(
      sim_->device(0).store().read_u64(0x8000 + 16 * 255, v).ok());
  EXPECT_EQ(v, 0x11ULL);  // Last block inside the clamp.
  ASSERT_TRUE(
      sim_->device(0).store().read_u64(0x8000 + 16 * 256, v).ok());
  EXPECT_EQ(v, 0ULL);  // First block beyond the clamp.
}

TEST_F(CmcExtrasTest, MemfillClampEmitsTraceAnnotation) {
  trace::VectorSink sink;
  sim_->tracer().attach(&sink);
  sim_->tracer().set_level(trace::Level::Cmc);
  const std::array<std::uint64_t, 2> fill{0x1, 100000};  // Clamped.
  post(spec::Rqst::CMC110, 0x9000, fill);
  sim_->tracer().detach(&sink);
  bool annotated = false;
  for (const auto& ev : sink.events()) {
    if (ev.note.find("clamped") != std::string::npos) {
      annotated = true;
    }
  }
  EXPECT_TRUE(annotated);
}

TEST_F(CmcExtrasTest, QueueDepthSamplingTracesOccupancy) {
  trace::VectorSink sink;
  sim_->tracer().attach(&sink);
  sim_->tracer().set_level(trace::Level::QueueDepth);
  // Burst several reads at one vault so its queue is non-empty when the
  // vault stage samples it.
  for (int i = 0; i < 8; ++i) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0;
    rd.tag = static_cast<std::uint16_t>(i);
    ASSERT_TRUE(sim_->send(rd, 0).ok());
  }
  for (int i = 0; i < 5; ++i) {
    sim_->clock();
  }
  sim_->tracer().detach(&sink);
  ASSERT_FALSE(sink.events().empty());
  bool saw_depth = false;
  for (const auto& ev : sink.events()) {
    EXPECT_EQ(ev.kind, trace::Level::QueueDepth);
    if (ev.value == 8) {
      saw_depth = true;  // The full burst observed in one sample.
    }
  }
  EXPECT_TRUE(saw_depth);
}

TEST_F(CmcExtrasTest, OperationsTracedByTheirNames) {
  trace::VectorSink sink;
  sim_->tracer().attach(&sink);
  sim_->tracer().set_level(trace::Level::Cmc);
  (void)roundtrip(spec::Rqst::CMC32, 0x100);
  (void)roundtrip(spec::Rqst::CMC21, 0x600);
  sim_->tracer().detach(&sink);
  std::set<std::string_view> names;
  for (const auto& ev : sink.events()) {
    names.insert(ev.op);
  }
  EXPECT_TRUE(names.contains("hmc_popcnt"));
  EXPECT_TRUE(names.contains("hmc_satinc"));
}

}  // namespace
}  // namespace hmcsim
