// registers_test.cpp — device register file tests.
#include "src/dev/registers.hpp"

#include <gtest/gtest.h>

namespace hmcsim::dev {
namespace {

TEST(Registers, InitPopulatesIdentification) {
  Registers regs;
  regs.init(sim::Config::hmc_8link_8gb(), /*dev_id=*/3);
  EXPECT_EQ(regs.peek(Reg::DeviceId), 3ULL);
  EXPECT_EQ(regs.peek(Reg::LinkConfig), 8ULL);
  EXPECT_EQ(regs.peek(Reg::Capacity), 8ULL << 30);
  EXPECT_EQ(regs.peek(Reg::BlockSize), 64ULL);
  EXPECT_EQ(regs.peek(Reg::VaultDepth), 64ULL);
  EXPECT_EQ(regs.peek(Reg::XbarDepth), 128ULL);
  EXPECT_EQ(regs.peek(Reg::Status), 1ULL);
  EXPECT_EQ(regs.peek(Reg::VendorId), kVendorId);
  EXPECT_EQ(regs.peek(Reg::Revision), 0x21ULL);
}

TEST(Registers, ReadMatchesPeek) {
  Registers regs;
  regs.init(sim::Config::hmc_4link_4gb(), 0);
  std::uint64_t v = 0;
  ASSERT_TRUE(
      regs.read(static_cast<std::uint32_t>(Reg::Capacity), v).ok());
  EXPECT_EQ(v, 4ULL << 30);
}

TEST(Registers, WritableRegistersAccept) {
  Registers regs;
  regs.init(sim::Config::hmc_4link_4gb(), 0);
  for (const Reg reg : {Reg::Error, Reg::Scratch0, Reg::Scratch1,
                        Reg::Scratch2, Reg::Scratch3}) {
    ASSERT_TRUE(
        regs.write(static_cast<std::uint32_t>(reg), 0xABCD).ok());
    EXPECT_EQ(regs.peek(reg), 0xABCDULL);
  }
}

TEST(Registers, ReadOnlyRegistersReject) {
  Registers regs;
  regs.init(sim::Config::hmc_4link_4gb(), 0);
  for (const Reg reg :
       {Reg::DeviceId, Reg::LinkConfig, Reg::Capacity, Reg::BlockSize,
        Reg::VaultDepth, Reg::XbarDepth, Reg::Status, Reg::CmcActive,
        Reg::ClockCount, Reg::VendorId, Reg::Revision}) {
    const std::uint64_t before = regs.peek(reg);
    EXPECT_FALSE(regs.write(static_cast<std::uint32_t>(reg), 0xFF).ok())
        << to_string(reg);
    EXPECT_EQ(regs.peek(reg), before);
  }
}

TEST(Registers, OutOfRangeIndex) {
  Registers regs;
  std::uint64_t v = 0;
  EXPECT_FALSE(regs.read(kNumRegisters, v).ok());
  EXPECT_FALSE(regs.write(kNumRegisters, 1).ok());
  EXPECT_FALSE(regs.read(1000, v).ok());
}

TEST(Registers, PokeBypassesReadOnly) {
  Registers regs;
  regs.init(sim::Config::hmc_4link_4gb(), 0);
  regs.poke(Reg::ClockCount, 12345);
  EXPECT_EQ(regs.peek(Reg::ClockCount), 12345ULL);
}

TEST(Registers, AllRegistersHaveNames) {
  for (std::uint32_t i = 0; i < kNumRegisters; ++i) {
    EXPECT_NE(to_string(static_cast<Reg>(i)), "?") << i;
  }
}

}  // namespace
}  // namespace hmcsim::dev
