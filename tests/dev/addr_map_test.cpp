// addr_map_test.cpp — address decode/encode tests.
#include "src/dev/addr_map.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.hpp"

namespace hmcsim::dev {
namespace {

TEST(AddrMap, GeometryFromConfig) {
  const AddrMap map(sim::Config::hmc_4link_4gb());
  EXPECT_EQ(map.block_size(), 64U);
  EXPECT_EQ(map.num_vaults(), 32U);
  EXPECT_EQ(map.num_banks(), 16U);
  EXPECT_EQ(map.vaults_per_quad(), 8U);
}

TEST(AddrMap, ZeroDecodesToOrigin) {
  const AddrMap map(sim::Config::hmc_4link_4gb());
  const DecodedAddr loc = map.decode(0);
  EXPECT_EQ(loc.quad, 0U);
  EXPECT_EQ(loc.vault, 0U);
  EXPECT_EQ(loc.bank, 0U);
  EXPECT_EQ(loc.dram, 0U);
}

TEST(AddrMap, ConsecutiveBlocksInterleaveAcrossVaults) {
  const AddrMap map(sim::Config::hmc_4link_4gb());
  for (std::uint32_t block = 0; block < 64; ++block) {
    const DecodedAddr loc = map.decode(std::uint64_t{block} * 64);
    EXPECT_EQ(loc.vault, block % 32) << block;
    EXPECT_EQ(loc.bank, (block / 32) % 16) << block;
  }
}

TEST(AddrMap, OffsetsWithinBlockShareLocation) {
  const AddrMap map(sim::Config::hmc_4link_4gb());
  const DecodedAddr base = map.decode(0x12340);
  for (std::uint64_t off = 0; off < 64; ++off) {
    const DecodedAddr loc = map.decode((0x12340 & ~63ULL) + off);
    EXPECT_EQ(loc.vault, base.vault);
    EXPECT_EQ(loc.bank, base.bank);
    EXPECT_EQ(loc.dram, base.dram);
  }
}

TEST(AddrMap, QuadDerivedFromVault) {
  const AddrMap map(sim::Config::hmc_4link_4gb());
  for (std::uint32_t v = 0; v < 32; ++v) {
    const DecodedAddr loc = map.decode(std::uint64_t{v} * 64);
    EXPECT_EQ(loc.vault, v);
    EXPECT_EQ(loc.quad, v / 8);
  }
}

TEST(AddrMap, EncodeIsInverseOfDecode) {
  const AddrMap map(sim::Config::hmc_8link_8gb());
  Xoshiro256 rng(31337);
  for (int i = 0; i < 2000; ++i) {
    // Block-aligned addresses inside 8 GiB.
    const std::uint64_t addr = (rng() % (8ULL << 30)) & ~63ULL;
    const DecodedAddr loc = map.decode(addr);
    EXPECT_EQ(map.encode(loc), addr);
  }
}

TEST(AddrMap, SingleHotAddressAlwaysSameVault) {
  // The paper's mutex experiment depends on this: one lock address is a
  // single-vault hot spot regardless of which thread/link sends.
  const AddrMap map(sim::Config::hmc_4link_4gb());
  const DecodedAddr first = map.decode(0x4000);
  for (int i = 0; i < 100; ++i) {
    const DecodedAddr loc = map.decode(0x4000);
    EXPECT_EQ(loc.vault, first.vault);
    EXPECT_EQ(loc.bank, first.bank);
  }
}

TEST(AddrMap, StrideOneStreamTouchesEveryVault) {
  const AddrMap map(sim::Config::hmc_4link_4gb());
  std::set<std::uint32_t> vaults;
  for (std::uint64_t block = 0; block < 32; ++block) {
    vaults.insert(map.decode(block * 64).vault);
  }
  EXPECT_EQ(vaults.size(), 32U);
}

TEST(AddrMap, BlockSizeChangesInterleaveGranularity) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.block_size = 256;
  const AddrMap map(cfg);
  EXPECT_EQ(map.decode(0).vault, 0U);
  EXPECT_EQ(map.decode(255).vault, 0U);
  EXPECT_EQ(map.decode(256).vault, 1U);
}

TEST(AddrMap, EightGigConfigHas32Banks) {
  const AddrMap map(sim::Config::hmc_8link_8gb());
  EXPECT_EQ(map.num_banks(), 32U);
  // Bank field sits above the vault field.
  const DecodedAddr loc = map.decode(64ULL * 32 * 5);  // block 160.
  EXPECT_EQ(loc.vault, 0U);
  EXPECT_EQ(loc.bank, 5U);
}

TEST(AddrMap, DramIndexAdvancesAboveBanks) {
  const AddrMap map(sim::Config::hmc_4link_4gb());  // 32 vaults, 16 banks.
  const std::uint64_t blocks_per_dram_row = 32ULL * 16;
  const DecodedAddr loc = map.decode(blocks_per_dram_row * 64 * 3);
  EXPECT_EQ(loc.vault, 0U);
  EXPECT_EQ(loc.bank, 0U);
  EXPECT_EQ(loc.dram, 3U);
}

}  // namespace
}  // namespace hmcsim::dev
