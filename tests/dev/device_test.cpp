// device_test.cpp — device assembly: stage semantics, head-of-line
// blocking, forwarding budgets, token flow.
#include "src/dev/device.hpp"

#include <gtest/gtest.h>

#include <array>

namespace hmcsim::dev {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : cfg_(sim::Config::hmc_4link_4gb()), device_(cfg_, 0, reg_) {}

  RqstEntry make_entry(spec::Rqst rqst, std::uint64_t addr,
                       std::uint16_t tag) {
    spec::RqstParams params;
    params.rqst = rqst;
    params.addr = addr;
    params.tag = tag;
    RqstEntry entry;
    EXPECT_TRUE(spec::build_request(params, entry.pkt).ok());
    return entry;
  }

  void clock(std::uint64_t cycle) {
    device_.clock_responses(cycle, tracer_, nullptr);
    device_.clock_vaults(cycle, nullptr, nullptr, tracer_);
    device_.clock_requests(cycle, tracer_, nullptr);
  }

  sim::Config cfg_;
  trace::Tracer tracer_;
  metrics::StatRegistry reg_;
  Device device_;
};

TEST_F(DeviceTest, SendConsumesTokensAndSlid) {
  ASSERT_TRUE(
      device_.send(make_entry(spec::Rqst::WR64, 0, 1), 2, 0, tracer_).ok());
  EXPECT_EQ(device_.links()[2].tokens(), 128U - 5U);  // WR64 = 5 FLITs.
  EXPECT_EQ(device_.xbar().rqst_queue(2).size(), 1U);
  EXPECT_EQ(device_.xbar().rqst_queue(2).front().pkt.slid(), 2);
}

TEST_F(DeviceTest, TokensReturnWhenRequestLeavesCrossbar) {
  ASSERT_TRUE(
      device_.send(make_entry(spec::Rqst::WR64, 0, 1), 0, 0, tracer_).ok());
  EXPECT_EQ(device_.links()[0].tokens(), 123U);
  clock(1);  // Stage C routes the packet into the vault queue.
  EXPECT_EQ(device_.links()[0].tokens(), 128U);
}

TEST_F(DeviceTest, ThreeStagePipelineLatency) {
  ASSERT_TRUE(
      device_.send(make_entry(spec::Rqst::RD16, 0x40, 9), 1, 0, tracer_)
          .ok());
  clock(1);
  EXPECT_FALSE(device_.rsp_ready(1));
  clock(2);
  EXPECT_FALSE(device_.rsp_ready(1));
  clock(3);
  ASSERT_TRUE(device_.rsp_ready(1));
  RspEntry rsp;
  ASSERT_TRUE(device_.recv(1, rsp).ok());
  EXPECT_EQ(rsp.pkt.tag(), 9);
  EXPECT_EQ(rsp.dst_link, 1);
}

TEST_F(DeviceTest, HeadOfLineBlockingPerLinkQueue) {
  // Fill one vault's request queue, then stack one more packet for the
  // full vault followed by one for a different (empty) vault on the SAME
  // link: the second must wait behind the stalled head.
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.vault_rqst_depth = 2;
  cfg.xbar_rqst_bw_flits = 0;  // Isolate HOL from bandwidth effects.
  metrics::StatRegistry reg;
  Device dev(cfg, 0, reg);

  // Two packets fill vault 0's queue after one stage-C pass.
  ASSERT_TRUE(dev.send(make_entry(spec::Rqst::RD16, 0, 1), 0, 0, tracer_)
                  .ok());
  ASSERT_TRUE(dev.send(make_entry(spec::Rqst::RD16, 0, 2), 0, 0, tracer_)
                  .ok());
  dev.clock_requests(1, tracer_, nullptr);  // Both reach vault 0 (depth 2).

  // Now a third for vault 0 (will stall) and one for vault 1 behind it.
  ASSERT_TRUE(dev.send(make_entry(spec::Rqst::RD16, 0, 3), 0, 0, tracer_)
                  .ok());
  ASSERT_TRUE(dev.send(make_entry(spec::Rqst::RD16, 64, 4), 0, 0, tracer_)
                  .ok());
  dev.clock_requests(2, tracer_, nullptr);
  // Vault 0 full, head stalled; the vault-1 packet is NOT routed.
  EXPECT_EQ(dev.vaults()[1].rqst_queue().size(), 0U);
  EXPECT_EQ(dev.xbar().rqst_queue(0).size(), 2U);
  EXPECT_GT(dev.xbar().rqst_stalls().value(), 0U);
}

TEST_F(DeviceTest, ForwardBandwidthBudgetThrottles) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.xbar_rqst_bw_flits = 17;  // Minimum legal budget.
  metrics::StatRegistry reg;
  Device dev(cfg, 0, reg);
  // 20 single-FLIT reads on one link: only 17 forward per cycle.
  for (std::uint16_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(dev.send(make_entry(spec::Rqst::RD16, 64ULL * i, i), 0, 0,
                         tracer_)
                    .ok());
  }
  dev.clock_requests(1, tracer_, nullptr);
  EXPECT_EQ(dev.xbar().rqst_queue(0).size(), 3U);
  EXPECT_GT(dev.xbar().rqst_bw_throttles().value(), 0U);
  dev.clock_requests(2, tracer_, nullptr);
  EXPECT_TRUE(dev.xbar().rqst_queue(0).empty());
}

TEST_F(DeviceTest, ResponseBandwidthBudgetThrottles) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.xbar_rsp_bw_flits = 18;  // 9 two-FLIT responses per cycle per link.
  metrics::StatRegistry reg;
  Device dev(cfg, 0, reg);
  // 12 INC8s to one vault, all from link 0 -> 12 1-FLIT WR_RS... use RD16
  // (2-FLIT responses) instead.
  for (std::uint16_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        dev.send(make_entry(spec::Rqst::RD16, 0, i), 0, 0, tracer_).ok());
  }
  dev.clock_requests(1, tracer_, nullptr);   // All into vault 0.
  trace::Tracer t;
  dev.clock_vaults(2, nullptr, nullptr, t);  // 12 responses generated.
  dev.clock_responses(3, tracer_, nullptr);  // Budget: 9 move.
  EXPECT_EQ(dev.xbar().rsp_queue(0).size(), 9U);
  EXPECT_GT(dev.xbar().rsp_bw_throttles().value(), 0U);
  dev.clock_responses(4, tracer_, nullptr);  // Remaining 3 move.
  EXPECT_EQ(dev.xbar().rsp_queue(0).size(), 12U);
}

TEST_F(DeviceTest, StatsAggregateComponents) {
  ASSERT_TRUE(
      device_.send(make_entry(spec::Rqst::RD16, 0, 1), 0, 0, tracer_).ok());
  clock(1);
  clock(2);
  clock(3);
  RspEntry rsp;
  ASSERT_TRUE(device_.recv(0, rsp).ok());
  EXPECT_EQ(reg_.sum("cube0.quad", "rqsts_processed"), 1U);
  EXPECT_EQ(reg_.sum("cube0.quad", "rsps_generated"), 1U);
  EXPECT_EQ(reg_.sum("cube0.link", "rqst_flits"), 1U);
  EXPECT_EQ(reg_.sum("cube0.link", "rsp_flits"), 2U);
}

TEST_F(DeviceTest, ResetPipelineDropsInFlightKeepsMemory) {
  ASSERT_TRUE(device_.store().write_u64(0x10, 42).ok());
  ASSERT_TRUE(
      device_.send(make_entry(spec::Rqst::RD16, 0, 1), 0, 0, tracer_).ok());
  device_.reset_pipeline();
  clock(1);
  clock(2);
  clock(3);
  EXPECT_FALSE(device_.rsp_ready(0));
  EXPECT_EQ(reg_.sum("cube0.quad", "rqsts_processed"), 0U);
  std::uint64_t v = 0;
  ASSERT_TRUE(device_.store().read_u64(0x10, v).ok());
  EXPECT_EQ(v, 42ULL);
  EXPECT_EQ(device_.links()[0].tokens(), 128U);  // Token pool refilled.
}

TEST_F(DeviceTest, InvalidLinkIndices) {
  EXPECT_FALSE(
      device_.send(make_entry(spec::Rqst::RD16, 0, 1), 4, 0, tracer_).ok());
  RspEntry rsp;
  EXPECT_FALSE(device_.recv(4, rsp).ok());
  EXPECT_FALSE(device_.rsp_ready(4));
}

TEST_F(DeviceTest, InFlightPacketsRoundTripThroughSerialize) {
  // Regression: the SLID stamp used to leave every in-flight request with
  // a stale CRC, so serialize -> parse_request failed mid-flight. The
  // link layer now reseals after stamping SLID/SEQ/FRP/RRP.
  ASSERT_TRUE(
      device_.send(make_entry(spec::Rqst::WR64, 0x80, 7), 2, 0, tracer_)
          .ok());
  const RqstEntry& in_flight = device_.xbar().rqst_queue(2).front();
  EXPECT_TRUE(spec::verify_crc(in_flight.pkt));
  std::array<std::uint64_t, spec::kMaxPacketWords> wire{};
  const std::size_t n = spec::serialize(in_flight.pkt, wire);
  ASSERT_GT(n, 0U);
  spec::RqstPacket parsed;
  ASSERT_TRUE(spec::parse_request({wire.data(), n}, parsed).ok());
  EXPECT_EQ(parsed.tag(), 7);
  EXPECT_EQ(parsed.slid(), 2);
}

TEST_F(DeviceTest, SendStampsLinkLayerFields) {
  for (std::uint16_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        device_.send(make_entry(spec::Rqst::RD16, 0x40, i), 1, i, tracer_)
            .ok());
  }
  auto& q = device_.xbar().rqst_queue(1);
  ASSERT_EQ(q.size(), 3U);
  // SEQ and FRP advance per packet on the link; RRP acknowledges the (so
  // far absent) response stream.
  for (std::uint16_t i = 0; i < 3; ++i) {
    const spec::RqstPacket& pkt = q.at(i).pkt;
    EXPECT_EQ(pkt.seq(), i);
    EXPECT_EQ(pkt.frp(), i + 1U);
    EXPECT_EQ(pkt.rrp(), 0U);
    EXPECT_TRUE(spec::verify_crc(pkt));
  }
}

TEST_F(DeviceTest, ResponseTailCarriesRtcAndSeq) {
  ASSERT_TRUE(
      device_.send(make_entry(spec::Rqst::RD16, 0x40, 3), 0, 0, tracer_)
          .ok());
  clock(1);
  clock(2);
  clock(3);
  ASSERT_TRUE(device_.rsp_ready(0));
  RspEntry rsp;
  ASSERT_TRUE(device_.recv(0, rsp).ok());
  // The RD16 request's single FLIT credit came back in this response's
  // RTC field; SEQ 0 and FRP 1 are the first transmit on the response
  // direction, and RRP acknowledges the request's FRP (1).
  EXPECT_EQ(rsp.pkt.rtc(), 1U);
  EXPECT_EQ(rsp.pkt.seq(), 0U);
  EXPECT_EQ(rsp.pkt.frp(), 1U);
  EXPECT_EQ(rsp.pkt.rrp(), 1U);
  EXPECT_TRUE(spec::verify_crc(rsp.pkt));
}

TEST_F(DeviceTest, RedeliveredPacketsReverifyAfterReplay) {
  // With every packet corrupting, the first send parks in the link's
  // retry FIFO and later sends queue behind it; after redelivery every
  // packet in the crossbar queue must still carry a valid CRC (replays
  // restamp RRP and reseal).
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = 1'000'000;
  cfg.link_retry_latency = 4;
  metrics::StatRegistry reg;
  Device dev(cfg, 0, reg);
  trace::Tracer tracer;
  for (std::uint16_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        dev.send(make_entry(spec::Rqst::RD16, 0x40, i), 0, 0, tracer).ok());
  }
  EXPECT_EQ(dev.links()[0].retry_buffered().value(), 3.0);
  EXPECT_EQ(dev.xbar().rqst_queue(0).size(), 0U);
  // Nothing moves before ready_cycle (cycle 4); hold stage C only so the
  // redelivered packets stay observable in the crossbar queue.
  dev.clock_requests(3, tracer, nullptr);
  EXPECT_EQ(dev.xbar().rqst_queue(0).size(), 0U);
  dev.clock_requests(4, tracer, nullptr);
  // Redelivery drains the FIFO in order and the drain continues into the
  // vault queues the same cycle, preserving FIFO order throughout.
  EXPECT_EQ(dev.links()[0].retry_buffered().value(), 0.0);
  EXPECT_EQ(dev.links()[0].retries().value(), 1U);
  auto& vq = dev.vaults()[1].rqst_queue();  // 0x40 decodes to vault 1.
  ASSERT_EQ(vq.size(), 3U);
  for (std::uint16_t i = 0; i < 3; ++i) {
    EXPECT_EQ(vq.at(i).pkt.tag(), i);
    EXPECT_TRUE(spec::verify_crc(vq.at(i).pkt));
  }
}

}  // namespace
}  // namespace hmcsim::dev
