// vault_test.cpp — vault controller processing semantics, exercised
// directly (no link/crossbar in the loop).
#include "src/dev/vault.hpp"

#include <gtest/gtest.h>

#include <array>

namespace hmcsim::dev {
namespace {

class VaultTest : public ::testing::Test {
 protected:
  VaultTest()
      : cfg_(sim::Config::hmc_4link_4gb()),
        store_(cfg_.capacity_bytes),
        amap_(cfg_),
        vault_(0, 0, cfg_, reg_, "cube0") {
    regs_.init(cfg_, 0);
  }

  ExecEnv env() {
    return ExecEnv{store_, regs_, amap_, nullptr, nullptr,
                   tracer_, cfg_,  0};
  }

  RqstEntry make_entry(spec::Rqst rqst, std::uint64_t addr,
                       std::uint16_t tag,
                       std::span<const std::uint64_t> payload = {}) {
    spec::RqstParams params;
    params.rqst = rqst;
    params.addr = addr;
    params.tag = tag;
    params.payload = payload;
    RqstEntry entry;
    EXPECT_TRUE(spec::build_request(params, entry.pkt).ok());
    return entry;
  }

  sim::Config cfg_;
  mem::BackingStore store_;
  Registers regs_;
  AddrMap amap_;
  trace::Tracer tracer_;
  metrics::StatRegistry reg_;
  Vault vault_;
};

TEST_F(VaultTest, ProcessesEntireQueueInOneCycle) {
  // HMC-Sim's timing-agnostic vault: every queued request executes in a
  // single clock (the property the paper's cycle counts rest on).
  for (std::uint16_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(vault_.rqst_queue().push(
        make_entry(spec::Rqst::RD16, 64ULL * i, i)));
  }
  auto e = env();
  vault_.process(1, e);
  EXPECT_TRUE(vault_.rqst_queue().empty());
  EXPECT_EQ(vault_.rsp_queue().size(), 64U);
  EXPECT_EQ(vault_.rqsts_processed().value(), 64U);
}

TEST_F(VaultTest, ResponsesPreserveRequestOrder) {
  for (std::uint16_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vault_.rqst_queue().push(
        make_entry(spec::Rqst::RD16, 0, static_cast<std::uint16_t>(100 + i))));
  }
  auto e = env();
  vault_.process(1, e);
  for (std::uint16_t i = 0; i < 8; ++i) {
    EXPECT_EQ(vault_.rsp_queue().pop().pkt.tag(), 100 + i);
  }
}

TEST_F(VaultTest, DefersWhenResponseQueueFull) {
  // Response queue holds 64; queue 70 reads -> 6 must stay queued in FIFO
  // order and retire next cycle once the response queue drains.
  for (std::uint16_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, i)));
  }
  auto e = env();
  vault_.process(1, e);
  ASSERT_TRUE(vault_.rsp_queue().full());
  for (std::uint16_t i = 64; i < 70; ++i) {
    ASSERT_TRUE(
        vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, i)));
  }
  vault_.process(2, e);
  EXPECT_EQ(vault_.rqst_queue().size(), 6U);
  EXPECT_GT(vault_.rsp_stalls().value(), 0U);
  // Drain two responses; exactly two deferred requests retire.
  (void)vault_.rsp_queue().pop();
  (void)vault_.rsp_queue().pop();
  vault_.process(3, e);
  EXPECT_EQ(vault_.rqst_queue().size(), 4U);
  EXPECT_EQ(vault_.rsp_queue().size(), 64U);
  // FIFO preserved: the head of the remaining queue is tag 66.
  EXPECT_EQ(vault_.rqst_queue().front().pkt.tag(), 66);
}

TEST_F(VaultTest, PostedRequestsRetireWithoutResponses) {
  const std::array<std::uint64_t, 2> data{1, 2};
  ASSERT_TRUE(vault_.rqst_queue().push(
      make_entry(spec::Rqst::P_WR16, 0x100, 1, data)));
  ASSERT_TRUE(
      vault_.rqst_queue().push(make_entry(spec::Rqst::P_INC8, 0x100, 2)));
  auto e = env();
  vault_.process(1, e);
  EXPECT_TRUE(vault_.rqst_queue().empty());
  EXPECT_TRUE(vault_.rsp_queue().empty());
  EXPECT_EQ(vault_.rqsts_processed().value(), 2U);
  std::uint64_t v = 0;
  ASSERT_TRUE(store_.read_u64(0x100, v).ok());
  EXPECT_EQ(v, 2ULL);  // 1 written, then incremented.
}

TEST_F(VaultTest, FlowPacketAtVaultCountsAsError) {
  ASSERT_TRUE(
      vault_.rqst_queue().push(make_entry(spec::Rqst::TRET, 0, 0)));
  auto e = env();
  vault_.process(1, e);
  EXPECT_EQ(vault_.errors().value(), 1U);
  EXPECT_TRUE(vault_.rsp_queue().empty());
}

TEST_F(VaultTest, CmcWithoutRegistryYieldsErrorResponse) {
  auto entry = make_entry(spec::Rqst::CMC44, 0, 5);
  // Give the CMC packet a 2-FLIT length manually.
  spec::RqstParams params;
  params.rqst = spec::Rqst::CMC44;
  params.tag = 5;
  params.flits_override = 2;
  ASSERT_TRUE(spec::build_request(params, entry.pkt).ok());
  ASSERT_TRUE(vault_.rqst_queue().push(entry));
  auto e = env();
  vault_.process(1, e);
  ASSERT_EQ(vault_.rsp_queue().size(), 1U);
  EXPECT_EQ(vault_.rsp_queue().front().pkt.cmd(),
            static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR));
  EXPECT_EQ(vault_.errors().value(), 1U);
}

TEST_F(VaultTest, BankConflictsStallWhenModelled) {
  cfg_.model_bank_conflicts = true;
  cfg_.bank_busy_cycles = 4;
  // Two reads to the same bank (same address): second must wait 4 cycles.
  ASSERT_TRUE(vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, 1)));
  ASSERT_TRUE(vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, 2)));
  auto e = env();
  vault_.process(1, e);
  EXPECT_EQ(vault_.rsp_queue().size(), 1U);
  EXPECT_EQ(vault_.rqst_queue().size(), 1U);
  EXPECT_EQ(vault_.bank_conflicts().value(), 1U);
  vault_.process(2, e);
  EXPECT_EQ(vault_.rqst_queue().size(), 1U);  // Bank busy until cycle 5.
  vault_.process(5, e);
  EXPECT_TRUE(vault_.rqst_queue().empty());
  EXPECT_EQ(vault_.rsp_queue().size(), 2U);
}

TEST_F(VaultTest, DifferentBanksNoConflict) {
  cfg_.model_bank_conflicts = true;
  cfg_.bank_busy_cycles = 4;
  // Same vault, different banks: addr stride of 32 vaults * 64 B.
  const std::uint64_t bank_stride = 64ULL * 32;
  ASSERT_TRUE(vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, 1)));
  ASSERT_TRUE(vault_.rqst_queue().push(
      make_entry(spec::Rqst::RD16, bank_stride, 2)));
  auto e = env();
  vault_.process(1, e);
  EXPECT_EQ(vault_.rsp_queue().size(), 2U);
  EXPECT_EQ(vault_.bank_conflicts().value(), 0U);
}

TEST_F(VaultTest, BankAccessCountsTracked) {
  ASSERT_TRUE(vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, 1)));
  ASSERT_TRUE(vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, 2)));
  auto e = env();
  vault_.process(1, e);
  EXPECT_EQ(vault_.banks()[0].accesses(), 2U);
}

TEST(VaultBackpressureTest, BlockedAtomicAppliesExactlyOnce) {
  // Regression: a non-posted atomic blocked by a full response queue must
  // execute its memory side effect exactly once. The old model re-executed
  // the whole request every blocked cycle, so an ADD16 stuck behind
  // response back-pressure added its immediate once per cycle.
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.vault_rsp_depth = 1;  // One slot: the second response blocks.
  mem::BackingStore store(cfg.capacity_bytes);
  Registers regs;
  regs.init(cfg, 0);
  AddrMap amap(cfg);
  trace::Tracer tracer;
  metrics::StatRegistry reg;
  Vault vault(0, 0, cfg, reg, "cube0");
  ExecEnv env{store, regs, amap, nullptr, nullptr, tracer, cfg, 0};

  const std::uint64_t addr = 0x200;
  ASSERT_TRUE(store.write_u64(addr, 5).ok());

  auto make = [](spec::Rqst rqst, std::uint64_t a, std::uint16_t tag,
                 std::span<const std::uint64_t> payload = {}) {
    spec::RqstParams params;
    params.rqst = rqst;
    params.addr = a;
    params.tag = tag;
    params.payload = payload;
    RqstEntry entry;
    EXPECT_TRUE(spec::build_request(params, entry.pkt).ok());
    return entry;
  };

  // A read fills the single response slot, then the atomic executes but
  // cannot retire.
  const std::array<std::uint64_t, 2> imm{7, 0};
  ASSERT_TRUE(vault.rqst_queue().push(make(spec::Rqst::RD16, 0, 1)));
  ASSERT_TRUE(vault.rqst_queue().push(make(spec::Rqst::ADD16, addr, 2, imm)));
  vault.process(1, env);
  ASSERT_TRUE(vault.rsp_queue().full());
  ASSERT_EQ(vault.rqst_queue().size(), 1U);

  // Two more blocked cycles: the staged response retries, the add must not
  // reapply.
  vault.process(2, env);
  vault.process(3, env);
  std::uint64_t v = 0;
  ASSERT_TRUE(store.read_u64(addr, v).ok());
  EXPECT_EQ(v, 12ULL) << "atomic applied more than once while blocked";
  EXPECT_EQ(vault.rsp_stalls().value(), 3U);  // One count per blocked cycle.
  EXPECT_EQ(vault.amo_executed().value(), 0U);  // Counted at retirement.

  // Drain the read; the staged atomic response retires untouched.
  (void)vault.rsp_queue().pop();
  vault.process(4, env);
  ASSERT_EQ(vault.rsp_queue().size(), 1U);
  EXPECT_EQ(vault.rsp_queue().front().pkt.tag(), 2);
  EXPECT_EQ(vault.amo_executed().value(), 1U);
  EXPECT_TRUE(vault.rqst_queue().empty());
  ASSERT_TRUE(store.read_u64(addr, v).ok());
  EXPECT_EQ(v, 12ULL);
}

TEST_F(VaultTest, ResetClearsEverything) {
  ASSERT_TRUE(vault_.rqst_queue().push(make_entry(spec::Rqst::RD16, 0, 1)));
  auto e = env();
  vault_.process(1, e);
  vault_.reset();
  EXPECT_TRUE(vault_.rqst_queue().empty());
  EXPECT_TRUE(vault_.rsp_queue().empty());
  EXPECT_EQ(vault_.rqsts_processed().value(), 0U);
  EXPECT_EQ(vault_.banks()[0].accesses(), 0U);
}

}  // namespace
}  // namespace hmcsim::dev
