// link_test.cpp — link endpoint flow-control and accounting tests.
#include "src/dev/link.hpp"

#include <gtest/gtest.h>

namespace hmcsim::dev {
namespace {

TEST(Link, StartsWithFullTokenPoolAfterReset) {
  Link link(128);
  link.reset();
  EXPECT_EQ(link.tokens(), 128U);
  EXPECT_EQ(link.token_capacity(), 128U);
}

TEST(Link, AcceptConsumesTokens) {
  Link link(10);
  link.reset();
  ASSERT_TRUE(link.accept_request(3).ok());
  EXPECT_EQ(link.tokens(), 7U);
  EXPECT_EQ(link.stats().rqst_packets, 1U);
  EXPECT_EQ(link.stats().rqst_flits, 3U);
}

TEST(Link, AcceptStallsWhenTokensExhausted) {
  Link link(4);
  link.reset();
  ASSERT_TRUE(link.accept_request(3).ok());
  const Status s = link.accept_request(2);
  EXPECT_TRUE(s.stalled());
  EXPECT_EQ(link.tokens(), 1U);  // Unchanged by the failed accept.
  EXPECT_EQ(link.stats().send_stalls, 1U);
}

TEST(Link, ReturnTokensCapsAtCapacity) {
  Link link(8);
  link.reset();
  ASSERT_TRUE(link.accept_request(5).ok());
  link.return_tokens(3);
  EXPECT_EQ(link.tokens(), 6U);
  link.return_tokens(100);
  EXPECT_EQ(link.tokens(), 8U);
}

TEST(Link, TretFlowPacketReturnsTokens) {
  Link link(8);
  link.reset();
  ASSERT_TRUE(link.accept_request(6).ok());
  link.consume_flow(spec::Rqst::TRET, 4);
  EXPECT_EQ(link.tokens(), 6U);
  EXPECT_EQ(link.stats().flow_packets, 1U);
}

TEST(Link, NonTretFlowPacketsOnlyCounted) {
  Link link(8);
  link.reset();
  ASSERT_TRUE(link.accept_request(4).ok());
  link.consume_flow(spec::Rqst::FLOW_NULL, 9);
  link.consume_flow(spec::Rqst::PRET, 9);
  link.consume_flow(spec::Rqst::IRTRY, 9);
  EXPECT_EQ(link.tokens(), 4U);  // No token movement.
  EXPECT_EQ(link.stats().flow_packets, 3U);
}

TEST(Link, EjectAccountsResponses) {
  Link link(8);
  link.reset();
  link.eject_response(5);
  link.eject_response(1);
  EXPECT_EQ(link.stats().rsp_packets, 2U);
  EXPECT_EQ(link.stats().rsp_flits, 6U);
}

TEST(Link, ResetClearsStatsAndRefills) {
  Link link(8);
  link.reset();
  ASSERT_TRUE(link.accept_request(8).ok());
  link.record_send_stall();
  link.reset();
  EXPECT_EQ(link.tokens(), 8U);
  EXPECT_EQ(link.stats().rqst_packets, 0U);
  EXPECT_EQ(link.stats().send_stalls, 0U);
}

}  // namespace
}  // namespace hmcsim::dev
