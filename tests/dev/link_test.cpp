// link_test.cpp — link endpoint flow-control and accounting tests.
#include "src/dev/link.hpp"

#include <gtest/gtest.h>

#include "src/metrics/stat_registry.hpp"

namespace hmcsim::dev {
namespace {

// Each test builds its own registry so counter paths never alias between
// Link instances.
class LinkTest : public ::testing::Test {
 protected:
  Link make_link(std::uint32_t capacity) {
    return Link(capacity, reg_, "cube0.link0");
  }

  metrics::StatRegistry reg_;
};

TEST_F(LinkTest, StartsWithFullTokenPoolAfterReset) {
  Link link = make_link(128);
  link.reset();
  EXPECT_EQ(link.tokens(), 128U);
  EXPECT_EQ(link.token_capacity(), 128U);
}

TEST_F(LinkTest, AcceptConsumesTokens) {
  Link link = make_link(10);
  ASSERT_TRUE(link.accept_request(3).ok());
  EXPECT_EQ(link.tokens(), 7U);
  EXPECT_EQ(link.rqst_packets().value(), 1U);
  EXPECT_EQ(link.rqst_flits().value(), 3U);
}

TEST_F(LinkTest, AcceptStallsWhenTokensExhausted) {
  Link link = make_link(4);
  ASSERT_TRUE(link.accept_request(3).ok());
  const Status s = link.accept_request(2);
  EXPECT_TRUE(s.stalled());
  EXPECT_EQ(link.tokens(), 1U);  // Unchanged by the failed accept.
  EXPECT_EQ(link.send_stalls().value(), 1U);
}

TEST_F(LinkTest, ReturnTokensCapsAtCapacity) {
  Link link = make_link(8);
  ASSERT_TRUE(link.accept_request(5).ok());
  link.return_tokens(3);
  EXPECT_EQ(link.tokens(), 6U);
  link.return_tokens(100);
  EXPECT_EQ(link.tokens(), 8U);
}

TEST_F(LinkTest, TretFlowPacketReturnsTokens) {
  Link link = make_link(8);
  ASSERT_TRUE(link.accept_request(6).ok());
  link.consume_flow(spec::Rqst::TRET, 4);
  EXPECT_EQ(link.tokens(), 6U);
  EXPECT_EQ(link.flow_packets().value(), 1U);
}

TEST_F(LinkTest, NonTretFlowPacketsOnlyCounted) {
  Link link = make_link(8);
  ASSERT_TRUE(link.accept_request(4).ok());
  link.consume_flow(spec::Rqst::FLOW_NULL, 9);
  link.consume_flow(spec::Rqst::PRET, 9);
  link.consume_flow(spec::Rqst::IRTRY, 9);
  EXPECT_EQ(link.tokens(), 4U);  // No token movement.
  EXPECT_EQ(link.flow_packets().value(), 3U);
}

TEST_F(LinkTest, EjectAccountsResponses) {
  Link link = make_link(8);
  link.eject_response(5);
  link.eject_response(1);
  EXPECT_EQ(link.rsp_packets().value(), 2U);
  EXPECT_EQ(link.rsp_flits().value(), 6U);
}

TEST_F(LinkTest, ResetClearsStatsAndRefills) {
  Link link = make_link(8);
  ASSERT_TRUE(link.accept_request(8).ok());
  link.record_send_stall();
  link.reset();
  EXPECT_EQ(link.tokens(), 8U);
  EXPECT_EQ(link.rqst_packets().value(), 0U);
  EXPECT_EQ(link.send_stalls().value(), 0U);
}

TEST_F(LinkTest, SeqAndFrpWrapAtFieldWidth) {
  Link link = make_link(8);
  // SEQ is a 3-bit field: 0..7 then back to 0.
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(link.next_rqst_seq(), i);
  }
  EXPECT_EQ(link.next_rqst_seq(), 0U);
  // FRP is a 9-bit pointer that starts at 1 (0 means "nothing received
  // yet") and wraps 511 -> 0 -> 1.
  for (std::uint32_t i = 1; i < 512; ++i) {
    EXPECT_EQ(link.next_rqst_frp(), i);
  }
  EXPECT_EQ(link.next_rqst_frp(), 0U);
  EXPECT_EQ(link.next_rqst_frp(), 1U);
  EXPECT_EQ(link.last_rqst_frp(), 1U);
}

TEST_F(LinkTest, RqstAndRspSequencesAreIndependent) {
  Link link = make_link(8);
  EXPECT_EQ(link.next_rqst_seq(), 0U);
  EXPECT_EQ(link.next_rqst_seq(), 1U);
  EXPECT_EQ(link.next_rsp_seq(), 0U);  // Unaffected by request traffic.
  EXPECT_EQ(link.next_rqst_frp(), 1U);
  EXPECT_EQ(link.next_rsp_frp(), 1U);
  EXPECT_EQ(link.last_rqst_frp(), 1U);
  EXPECT_EQ(link.last_rsp_frp(), 1U);
}

TEST_F(LinkTest, TakeRtcDrainsPendingPoolInFieldSizedBites) {
  Link link = make_link(32);
  ASSERT_TRUE(link.accept_request(20).ok());
  link.return_tokens(9);  // Also feeds the pending RTC pool.
  EXPECT_EQ(link.pending_rtc(), 9U);
  EXPECT_EQ(link.take_rtc(), 7U);  // RTC is a 3-bit field: capped at 7.
  EXPECT_EQ(link.take_rtc(), 2U);
  EXPECT_EQ(link.take_rtc(), 0U);
  EXPECT_EQ(link.pending_rtc(), 0U);
}

TEST_F(LinkTest, RetryBufferGaugeTracksParkedFlits) {
  Link link = make_link(8);
  link.add_retry_buffered(5);
  link.add_retry_buffered(2);
  EXPECT_EQ(link.retry_buffered().value(), 7.0);
  link.sub_retry_buffered(5);
  EXPECT_EQ(link.retry_buffered().value(), 2.0);
  link.sub_retry_buffered(2);
  EXPECT_EQ(link.retry_buffered().value(), 0.0);
}

TEST_F(LinkTest, RspRetryCountsUnderBothTotals) {
  Link link = make_link(8);
  link.record_retry();
  link.record_rsp_retry();
  EXPECT_EQ(link.retries().value(), 2U);  // Total spans both directions.
  EXPECT_EQ(link.rsp_retries().value(), 1U);
  link.record_flow_drop();
  EXPECT_EQ(link.flow_drops().value(), 1U);
}

TEST_F(LinkTest, ResetClearsRetryStateAndSequences) {
  Link link = make_link(8);
  (void)link.next_rqst_seq();
  (void)link.next_rqst_frp();
  (void)link.next_rsp_frp();
  link.return_tokens(3);
  link.add_retry_buffered(4);
  link.record_rsp_retry();
  link.record_flow_drop();
  link.reset();
  EXPECT_EQ(link.next_rqst_seq(), 0U);
  EXPECT_EQ(link.next_rqst_frp(), 1U);
  EXPECT_EQ(link.last_rsp_frp(), 0U);
  EXPECT_EQ(link.pending_rtc(), 0U);
  EXPECT_EQ(link.retry_buffered().value(), 0.0);
  EXPECT_EQ(link.rsp_retries().value(), 0U);
  EXPECT_EQ(link.flow_drops().value(), 0U);
}

TEST_F(LinkTest, CountersVisibleThroughRegistryPaths) {
  Link link = make_link(16);
  ASSERT_TRUE(link.accept_request(3).ok());
  EXPECT_EQ(reg_.counter_value("cube0.link0.rqst_packets"), 1U);
  EXPECT_EQ(reg_.counter_value("cube0.link0.rqst_flits"), 3U);
}

}  // namespace
}  // namespace hmcsim::dev
