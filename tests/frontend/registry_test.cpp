// registry_test.cpp — FrontendRegistry/BackendRegistry contracts and the
// golden-equivalence guarantee: running a workload through the virtual
// frontend/backend dispatch must produce byte-identical stats to the
// legacy direct entry points.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backend/hmc_backend.hpp"
#include "frontend/frontend.hpp"
#include "frontend/runner.hpp"
#include "host/mutex_driver.hpp"
#include "host/trace_replay.hpp"
#include "plugins/builtin.h"
#include "sim/simulator.hpp"
#include "sim/stats_report.hpp"

namespace hmcsim::frontend {
namespace {

Status register_mutex_trio(sim::Simulator& sim) {
  if (Status s = sim.register_cmc(hmcsim_builtin_lock_register,
                                  hmcsim_builtin_lock_execute,
                                  hmcsim_builtin_lock_str);
      !s.ok()) {
    return s;
  }
  if (Status s = sim.register_cmc(hmcsim_builtin_trylock_register,
                                  hmcsim_builtin_trylock_execute,
                                  hmcsim_builtin_trylock_str);
      !s.ok()) {
    return s;
  }
  return sim.register_cmc(hmcsim_builtin_unlock_register,
                          hmcsim_builtin_unlock_execute,
                          hmcsim_builtin_unlock_str);
}

Status provide_cmc(sim::Simulator& sim, std::string_view op) {
  if (op == "hmc_lock") {
    return sim.register_cmc(hmcsim_builtin_lock_register,
                            hmcsim_builtin_lock_execute,
                            hmcsim_builtin_lock_str);
  }
  if (op == "hmc_trylock") {
    return sim.register_cmc(hmcsim_builtin_trylock_register,
                            hmcsim_builtin_trylock_execute,
                            hmcsim_builtin_trylock_str);
  }
  if (op == "hmc_unlock") {
    return sim.register_cmc(hmcsim_builtin_unlock_register,
                            hmcsim_builtin_unlock_execute,
                            hmcsim_builtin_unlock_str);
  }
  if (op == "hmc_satinc") {
    return sim.register_cmc(hmcsim_builtin_satinc_register,
                            hmcsim_builtin_satinc_execute,
                            hmcsim_builtin_satinc_str);
  }
  return Status::NotFound("no builtin CMC operation named '" +
                          std::string(op) + "'");
}

std::unique_ptr<sim::Simulator> make_sim(
    std::uint64_t seed = sim::Config{}.workload_seed) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.workload_seed = seed;
  std::unique_ptr<sim::Simulator> sim;
  EXPECT_TRUE(sim::Simulator::create(cfg, sim).ok());
  return sim;
}

class NullFrontend final : public Frontend {
 public:
  [[nodiscard]] std::string describe() const override { return "null"; }
  Status setup(backend::MemoryBackend&) override { return Status::Ok(); }
  Status tick(backend::MemoryBackend& mem, std::uint64_t) override {
    mem.clock();
    return Status::Ok();
  }
  [[nodiscard]] bool done() const override { return true; }
};

Status null_factory(const FrontendOptions&, std::unique_ptr<Frontend>& out) {
  out = std::make_unique<NullFrontend>();
  return Status::Ok();
}

// ---- registry contracts ---------------------------------------------------

TEST(FrontendRegistryTest, BuiltinsAreRegistered) {
  FrontendRegistry& reg = FrontendRegistry::instance();
  for (const char* name :
       {"replay", "mutex", "rogue", "spinlock", "synthetic"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
}

TEST(FrontendRegistryTest, DuplicateNameIsRejected) {
  FrontendRegistry reg;
  ASSERT_TRUE(reg.add("alpha", "first", null_factory).ok());
  const Status dup = reg.add("alpha", "second", null_factory);
  EXPECT_EQ(dup.code(), StatusCode::AlreadyExists);
  EXPECT_NE(dup.message().find("alpha"), std::string::npos);
}

TEST(FrontendRegistryTest, UnknownNameNamesTheRegisteredSet) {
  FrontendRegistry reg;
  ASSERT_TRUE(reg.add("alpha", "", null_factory).ok());
  ASSERT_TRUE(reg.add("beta", "", null_factory).ok());
  FrontendInfo info;
  const Status s = reg.info("gamma", info);
  EXPECT_EQ(s.code(), StatusCode::NotFound);
  EXPECT_NE(s.message().find("unknown frontend 'gamma'"), std::string::npos);
  EXPECT_NE(s.message().find("alpha, beta"), std::string::npos);
}

TEST(FrontendRegistryTest, ListIsSortedRegardlessOfRegistrationOrder) {
  FrontendRegistry reg;
  ASSERT_TRUE(reg.add("zeta", "", null_factory).ok());
  ASSERT_TRUE(reg.add("alpha", "", null_factory).ok());
  ASSERT_TRUE(reg.add("mu", "", null_factory).ok());
  const auto list = reg.list();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].name, "alpha");
  EXPECT_EQ(list[1].name, "mu");
  EXPECT_EQ(list[2].name, "zeta");
}

TEST(FrontendRegistryTest, UnconsumedOptionIsRejected) {
  FrontendRegistry reg;
  ASSERT_TRUE(reg.add("alpha", "", null_factory).ok());
  FrontendOptions opts;
  opts.set("bogus", "1");
  std::unique_ptr<Frontend> fe;
  const Status s = reg.create("alpha", opts, fe);
  EXPECT_EQ(s.code(), StatusCode::InvalidArg);
  EXPECT_NE(s.message().find("unknown option 'bogus'"), std::string::npos);
}

TEST(FrontendOptionsTest, MalformedNumberIsRejected) {
  FrontendOptions opts;
  opts.set("count", "12abc");
  std::uint64_t v = 0;
  EXPECT_EQ(opts.get_u64("count", v).code(), StatusCode::InvalidArg);
  // Absent keys leave the output untouched and succeed.
  std::uint64_t untouched = 7;
  EXPECT_TRUE(opts.get_u64("absent", untouched).ok());
  EXPECT_EQ(untouched, 7u);
}

TEST(BackendRegistryTest, HmcIsRegisteredAndUnknownNamesError) {
  backend::BackendRegistry& reg = backend::BackendRegistry::instance();
  EXPECT_TRUE(reg.contains("hmc"));
  std::unique_ptr<backend::MemoryBackend> mem;
  const Status s = reg.create("dram", sim::Config::hmc_4link_4gb(), mem);
  EXPECT_EQ(s.code(), StatusCode::NotFound);
  EXPECT_NE(s.message().find("unknown backend 'dram'"), std::string::npos);
  EXPECT_NE(s.message().find("hmc"), std::string::npos);

  ASSERT_TRUE(reg.create("hmc", sim::Config::hmc_4link_4gb(), mem).ok());
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->num_links(), 4u);
  EXPECT_NE(mem->simulator(), nullptr);
}

// ---- golden equivalence through virtual dispatch --------------------------

TEST(FrontendDispatchTest, MutexMatchesLegacyEntryPointByteForByte) {
  // Legacy path: the host:: entry point over a directly-driven simulator.
  auto sim_a = make_sim();
  ASSERT_TRUE(register_mutex_trio(*sim_a).ok());
  host::MutexOptions mopts;
  mopts.lock_addr = 0x4000;
  host::MutexResult result_a;
  ASSERT_TRUE(host::run_mutex_contention(*sim_a, 4, mopts, result_a).ok());

  // Registry path: frontend created by name, run through MemoryBackend.
  auto sim_b = make_sim();
  ASSERT_TRUE(register_mutex_trio(*sim_b).ok());
  FrontendOptions opts;
  opts.set("threads", "4");
  opts.set("lock-addr", "0x4000");
  std::unique_ptr<Frontend> fe;
  ASSERT_TRUE(
      FrontendRegistry::instance().create("mutex", opts, fe).ok());
  backend::HmcBackend mem(*sim_b);
  ASSERT_TRUE(run(mem, *fe).ok());

  EXPECT_EQ(sim::format_stats_json(*sim_a), sim::format_stats_json(*sim_b));
}

TEST(FrontendDispatchTest, ReplayMatchesLegacyEntryPointByteForByte) {
  host::TraceBuilder builder(4);
  for (int i = 0; i < 32; ++i) {
    builder.add(spec::Rqst::WR64, 0x1000 + 64 * i,
                {1, 2, 3, 4, 5, 6, 7, 8}, 2);
  }
  for (int i = 0; i < 32; ++i) {
    builder.add(spec::Rqst::RD64, 0x1000 + 64 * i, {}, 1);
  }
  const auto records = builder.take();

  auto sim_a = make_sim();
  host::ReplayResult result_a;
  ASSERT_TRUE(host::replay_trace(*sim_a, records, result_a).ok());

  auto sim_b = make_sim();
  backend::HmcBackend mem(*sim_b);
  std::unique_ptr<Frontend> fe;
  {
    const std::string path = testing::TempDir() + "/registry_replay.trace";
    ASSERT_TRUE(host::save_trace(path, records).ok());
    FrontendOptions opts;
    opts.set("trace", path);
    ASSERT_TRUE(
        FrontendRegistry::instance().create("replay", opts, fe).ok());
  }
  ASSERT_TRUE(run(mem, *fe).ok());

  EXPECT_EQ(sim::format_stats_json(*sim_a), sim::format_stats_json(*sim_b));
}

// ---- synthetic load generator ---------------------------------------------

std::string run_synthetic(std::uint64_t seed, const char* pattern) {
  auto sim = make_sim(seed);
  FrontendOptions opts;
  opts.set("pattern", pattern);
  opts.set("count", "256");
  opts.set("rate", "0.5");
  opts.set_cmc_provider(provide_cmc);
  std::unique_ptr<Frontend> fe;
  EXPECT_TRUE(
      FrontendRegistry::instance().create("synthetic", opts, fe).ok());
  backend::HmcBackend mem(*sim);
  EXPECT_TRUE(run(mem, *fe).ok());
  EXPECT_TRUE(fe->succeeded());
  return sim::format_stats_json(*sim);
}

TEST(SyntheticFrontendTest, EveryPatternCompletesAndIsSeedDeterministic) {
  for (const char* pattern : {"uniform", "zipfian", "chase", "bursty"}) {
    const std::string first = run_synthetic(0xABCD, pattern);
    const std::string second = run_synthetic(0xABCD, pattern);
    EXPECT_EQ(first, second) << pattern;
    // format_stats_json nests paths, so look for the group and leaf keys.
    EXPECT_NE(first.find("\"synthetic\""), std::string::npos) << pattern;
    EXPECT_NE(first.find("\"requests\""), std::string::npos) << pattern;
  }
}

TEST(SyntheticFrontendTest, SeedChangesTheRun) {
  const std::string a = run_synthetic(1, "uniform");
  const std::string b = run_synthetic(2, "uniform");
  EXPECT_NE(a, b);
}

TEST(SyntheticFrontendTest, CmcMixNeedsAProvider) {
  auto sim = make_sim();
  FrontendOptions opts;
  opts.set("cmc-pct", "10");
  std::unique_ptr<Frontend> fe;
  ASSERT_TRUE(
      FrontendRegistry::instance().create("synthetic", opts, fe).ok());
  backend::HmcBackend mem(*sim);
  const Status s = run(mem, *fe);
  EXPECT_EQ(s.code(), StatusCode::InvalidState);
}

TEST(SyntheticFrontendTest, CmcMixExecutesThroughProvider) {
  auto sim = make_sim();
  FrontendOptions opts;
  opts.set("count", "64");
  opts.set("cmc-pct", "50");
  opts.set_cmc_provider(provide_cmc);
  std::unique_ptr<Frontend> fe;
  ASSERT_TRUE(
      FrontendRegistry::instance().create("synthetic", opts, fe).ok());
  backend::HmcBackend mem(*sim);
  ASSERT_TRUE(run(mem, *fe).ok());
  EXPECT_TRUE(fe->succeeded());
  const std::string json = sim::format_stats_json(*sim);
  EXPECT_NE(json.find("\"hmc_satinc\""), std::string::npos);
}

}  // namespace
}  // namespace hmcsim::frontend
