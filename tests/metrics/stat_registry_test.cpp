// stat_registry_test.cpp — the hierarchical statistics registry.
#include "src/metrics/stat_registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace hmcsim::metrics {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0U);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42U);
  c.reset();
  EXPECT_EQ(c.value(), 0U);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 = {0}; bucket i covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_upper(0), 0U);
  EXPECT_EQ(Histogram::bucket_upper(1), 1U);
  EXPECT_EQ(Histogram::bucket_upper(2), 3U);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023U);
  EXPECT_EQ(Histogram::bucket_upper(64),
            std::numeric_limits<std::uint64_t>::max());

  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket(0), 1U);  // {0}
  EXPECT_EQ(h.bucket(1), 1U);  // {1}
  EXPECT_EQ(h.bucket(2), 2U);  // {2, 3}
  EXPECT_EQ(h.bucket(3), 1U);  // {4}
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.min(), 0U);  // Empty histogram reports 0, not UINT64_MAX.
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (std::uint64_t v : {5ULL, 10ULL, 15ULL}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.sum(), 30U);
  EXPECT_EQ(h.min(), 5U);
  EXPECT_EQ(h.max(), 15U);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, PercentilesClampToObservedMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.record(10);  // Bucket 4, upper bound 15.
  }
  h.record(1000);  // Bucket 10, upper bound 1023.
  // p50 lands in the bucket holding 10s; its upper bound (15) caps the
  // estimate. p99 is still within the 10s; p100-ish tail hits the max.
  EXPECT_EQ(h.percentile(50), 15U);
  EXPECT_EQ(h.percentile(99), 15U);
  EXPECT_EQ(h.percentile(100), 1000U);  // Clamped to observed max.
}

TEST(StatRegistry, RegistrationIsIdempotent) {
  StatRegistry reg;
  Counter& a = reg.counter("cube0.vault0.hits", "hits");
  Counter& b = reg.counter("cube0.vault0.hits");
  EXPECT_EQ(&a, &b);
  a.inc(7);
  EXPECT_EQ(reg.counter_value("cube0.vault0.hits"), 7U);
  EXPECT_EQ(reg.size(), 1U);
}

TEST(StatRegistry, KindMismatchThrows) {
  StatRegistry reg;
  reg.counter("x.y");
  EXPECT_THROW(reg.gauge("x.y"), std::logic_error);
  EXPECT_THROW(reg.histogram("x.y"), std::logic_error);
}

TEST(StatRegistry, FindIsKindAware) {
  StatRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.level").set(1.5);
  reg.histogram("a.lat").record(9);
  EXPECT_NE(reg.find_counter("a.count"), nullptr);
  EXPECT_EQ(reg.find_counter("a.level"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_NE(reg.find_gauge("a.level"), nullptr);
  EXPECT_NE(reg.find_histogram("a.lat"), nullptr);
  EXPECT_EQ(reg.counter_value("missing"), 0U);
}

TEST(StatRegistry, SumMatchesPrefixAndLeaf) {
  StatRegistry reg;
  reg.counter("cube0.quad0.vault0.rqsts").inc(1);
  reg.counter("cube0.quad0.vault1.rqsts").inc(2);
  reg.counter("cube0.quad1.vault0.rqsts").inc(4);
  reg.counter("cube0.quad0.vault0.errors").inc(100);  // Different leaf.
  reg.counter("cube1.quad0.vault0.rqsts").inc(100);   // Different prefix.
  EXPECT_EQ(reg.sum("cube0.quad", "rqsts"), 7U);
  // The leaf must be a full final segment: "qsts" matches nothing.
  EXPECT_EQ(reg.sum("cube0.quad", "qsts"), 0U);
}

TEST(StatRegistry, SnapshotDeltaOmitsZeroAndCountsNewFromZero) {
  StatRegistry reg;
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");
  a.inc(5);
  const auto before = reg.snapshot_counters();
  a.inc(3);
  Counter& c = reg.counter("c");
  c.inc(2);
  const auto after = reg.snapshot_counters();
  const auto d = StatRegistry::delta(before, after);
  ASSERT_EQ(d.size(), 2U);
  EXPECT_EQ(d.at("a"), 3U);
  EXPECT_EQ(d.at("c"), 2U);  // Absent from `before`: counts from zero.
  EXPECT_EQ(d.count("b"), 0U);  // Unchanged: omitted.
  (void)b;
}

TEST(StatRegistry, ForEachVisitsSortedPaths) {
  StatRegistry reg;
  reg.counter("b");
  reg.counter("a");
  reg.gauge("c");
  std::vector<std::string> order;
  reg.for_each([&order](std::string_view path, StatKind, const Counter*,
                        const Gauge*, const Histogram*) {
    order.emplace_back(path);
  });
  ASSERT_EQ(order.size(), 3U);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");
}

TEST(StatRegistry, JsonNestsPathsAndRendersKinds) {
  StatRegistry reg;
  reg.counter("cube0.vault0.hits").inc(3);
  reg.counter("cube0.vault0.misses").inc(1);
  reg.gauge("host.load").set(0.5);
  reg.histogram("host.latency").record(7);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"cube0\""), std::string::npos);
  EXPECT_NE(json.find("\"vault0\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"misses\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"load\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 7"), std::string::npos);
}

TEST(StatRegistry, CsvHasHeaderAndOneRowPerStat) {
  StatRegistry reg;
  reg.counter("a").inc(4);
  reg.histogram("h").record(2);
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.find("path,kind,value,count,sum,min,max,p50,p95,p99"), 0U);
  EXPECT_NE(csv.find("a,counter,4"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram"), std::string::npos);
}

TEST(StatRegistry, ResetZeroesValuesKeepsRegistrations) {
  StatRegistry reg;
  Counter& c = reg.counter("a");
  c.inc(9);
  reg.gauge("g").set(2.0);
  reg.histogram("h").record(5);
  reg.reset();
  EXPECT_EQ(reg.size(), 3U);
  EXPECT_EQ(c.value(), 0U);
  EXPECT_DOUBLE_EQ(reg.find_gauge("g")->value(), 0.0);
  EXPECT_EQ(reg.find_histogram("h")->count(), 0U);
  // Handles stay valid across reset: the same object keeps counting.
  c.inc();
  EXPECT_EQ(reg.counter_value("a"), 1U);
}

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace hmcsim::metrics
