// sampler_test.cpp — the time-series sampler over a bare registry.
//
// The sampler only ever *reads* the registry, so these tests drive it
// directly: registry mutations between sample() calls stand in for
// simulated cycles. Integration with the periodic-hook machinery (exact
// cycles, thread-count invariance) is covered by
// tests/sim/golden_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <string>

#include "src/metrics/sampler.hpp"
#include "src/metrics/stat_registry.hpp"

namespace hmcsim::metrics {
namespace {

TEST(Sampler, CapturesValuesAndDeltas) {
  StatRegistry reg;
  Counter& pkts = reg.counter("link0.packets");
  Gauge& depth = reg.gauge("link0.depth");

  Sampler s(reg, {.every = 10, .capacity = 8, .paths = {}});
  pkts.inc(5);
  depth.set(3.0);
  s.sample(10);
  pkts.inc(7);
  depth.set(1.0);
  s.sample(20);

  ASSERT_EQ(s.windows(), 2U);
  const std::string json = s.to_json();
  // Window 1: cumulative value plus the per-window delta.
  EXPECT_NE(json.find("\"cycle\": 20"), std::string::npos);
  EXPECT_NE(json.find("\"dcycles\": 10"), std::string::npos);
  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("10,10,link0.packets,counter,5,5"), std::string::npos);
  EXPECT_NE(csv.find("20,10,link0.packets,counter,12,7"),
            std::string::npos);
  // Gauges report the level and the signed change.
  EXPECT_NE(csv.find("10,10,link0.depth,gauge,3,3"), std::string::npos);
  EXPECT_NE(csv.find("20,10,link0.depth,gauge,1,-2"), std::string::npos);
}

TEST(Sampler, RingEvictsOldestWindow) {
  StatRegistry reg;
  Counter& c = reg.counter("a.count");
  Sampler s(reg, {.every = 1, .capacity = 3, .paths = {}});
  for (std::uint64_t cycle = 1; cycle <= 5; ++cycle) {
    c.inc();
    s.sample(cycle);
  }
  EXPECT_EQ(s.windows(), 3U);
  EXPECT_EQ(s.windows_taken(), 5U);
  const std::string json = s.to_json();
  // Only the last three windows survive, oldest first.
  EXPECT_EQ(json.find("\"cycle\": 1,"), std::string::npos);
  EXPECT_EQ(json.find("\"cycle\": 2,"), std::string::npos);
  const std::size_t w3 = json.find("\"cycle\": 3");
  const std::size_t w4 = json.find("\"cycle\": 4");
  const std::size_t w5 = json.find("\"cycle\": 5");
  ASSERT_NE(w3, std::string::npos);
  ASSERT_NE(w4, std::string::npos);
  ASSERT_NE(w5, std::string::npos);
  EXPECT_LT(w3, w4);
  EXPECT_LT(w4, w5);
}

TEST(Sampler, PrefixFilterSelectsColumns) {
  StatRegistry reg;
  reg.counter("cube0.link0.packets").inc(1);
  reg.counter("cube0.vault0.rqsts").inc(2);
  reg.counter("cube1.link0.packets").inc(3);

  Sampler s(reg, {.every = 1, .capacity = 4, .paths = {"cube0.link"}});
  s.sample(1);
  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("cube0.link0.packets"), std::string::npos);
  EXPECT_EQ(csv.find("cube0.vault0"), std::string::npos);
  EXPECT_EQ(csv.find("cube1"), std::string::npos);
}

TEST(Sampler, ProfPathsExcludedByDefaultButSelectable) {
  StatRegistry reg;
  reg.counter("cube0.link0.packets");
  reg.counter("sim.prof.spans").inc(9);

  Sampler all(reg, {.every = 1, .capacity = 2, .paths = {}});
  all.sample(1);
  // Wall-clock profiling stats would make the default export
  // non-deterministic, so they never join an unfiltered series.
  EXPECT_EQ(all.to_csv().find("sim.prof"), std::string::npos);

  Sampler prof(reg, {.every = 1, .capacity = 2, .paths = {"sim.prof"}});
  prof.sample(1);
  EXPECT_NE(prof.to_csv().find("sim.prof.spans,counter,9,9"),
            std::string::npos);
}

TEST(Sampler, DerivedRateNormalisesPerCycle) {
  StatRegistry reg;
  Counter& rqst = reg.counter("cube0.link0.rqst_packets");
  Counter& rsp = reg.counter("cube0.link0.rsp_packets");

  Sampler s(reg, {.every = 10, .capacity = 4, .paths = {"none-match"}});
  s.add_derived({.name = "cube0.pkts_per_cycle",
                 .terms = {{"cube0.link", "rqst_packets"},
                           {"cube0.link", "rsp_packets"}},
                 .scale = 1.0});
  rqst.inc(12);
  rsp.inc(8);
  s.sample(10);  // (12 + 8) / 10 cycles = 2 per cycle.
  rqst.inc(3);
  rsp.inc(2);
  s.sample(20);  // 5 / 10 = 0.5 per cycle.

  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("10,10,cube0.pkts_per_cycle,rate,2,20"),
            std::string::npos);
  EXPECT_NE(csv.find("20,10,cube0.pkts_per_cycle,rate,0.5,5"),
            std::string::npos);
}

TEST(Sampler, ColumnsFreezeAtFirstSample) {
  StatRegistry reg;
  reg.counter("early.count").inc(1);
  Sampler s(reg, {.every = 1, .capacity = 4, .paths = {}});
  s.sample(1);
  // Registered after the freeze: never joins the series, and neither
  // does a late derived registration.
  reg.counter("late.count").inc(5);
  s.add_derived({.name = "late.rate",
                 .terms = {{"late", "count"}},
                 .scale = 1.0});
  s.sample(2);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("early.count"), std::string::npos);
  EXPECT_EQ(json.find("late.count"), std::string::npos);
  EXPECT_EQ(json.find("late.rate"), std::string::npos);
}

TEST(Sampler, HistogramColumnsTrackCount) {
  StatRegistry reg;
  Histogram& h = reg.histogram("host.latency");
  Sampler s(reg, {.every = 1, .capacity = 2, .paths = {}});
  h.record(10);
  h.record(20);
  s.sample(1);
  h.record(30);
  s.sample(2);
  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("1,1,host.latency,histogram,2,2"), std::string::npos);
  EXPECT_NE(csv.find("2,1,host.latency,histogram,3,1"), std::string::npos);
}

TEST(Sampler, EmptyExportsAreWellFormed) {
  StatRegistry reg;
  Sampler s(reg, {.every = 4, .capacity = 2, .paths = {}});
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"windows\": ["), std::string::npos);
  EXPECT_NE(json.find("\"windows_taken\": 0"), std::string::npos);
  EXPECT_NE(s.to_csv().find("cycle,dcycles,path,kind,value,delta"),
            std::string::npos);
}

}  // namespace
}  // namespace hmcsim::metrics
