// bench_frontend_dispatch.cpp — cost of the frontend/backend seam.
//
// The refactor moved every request source behind the MemoryBackend
// virtual interface; these benchmarks bound what that indirection costs.
// BM_SaturatedDirect and BM_SaturatedBackend run the identical saturated
// send/clock/recv loop against the concrete Simulator and through the
// virtual dispatch — the packets/sec ratio between them is the
// virtualization overhead (acceptance: within 2%). BM_SyntheticRunner
// measures the full runner + synthetic-frontend path end to end.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/backend/hmc_backend.hpp"
#include "src/frontend/frontend.hpp"
#include "src/frontend/runner.hpp"
#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

std::unique_ptr<sim::Simulator> make_sim() {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    return nullptr;
  }
  return sim;
}

/// The shared saturated loop, templated over the access surface so the
/// compiler sees the exact same code driving either a Simulator& (direct,
/// fully inlinable) or a MemoryBackend& (virtual calls).
template <typename Mem>
void saturated_loop(benchmark::State& state, Mem& mem,
                    std::uint32_t num_links) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  std::int64_t packets = 0;
  for (auto _ : state) {
    rd.tag = tag++ & spec::kMaxTag;
    rd.addr = (static_cast<std::uint64_t>(tag) * 64) % (1 << 20);
    (void)mem.send(rd, tag % num_links);
    mem.clock();
    sim::Response rsp;
    for (std::uint32_t link = 0; link < num_links; ++link) {
      while (mem.recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
        ++packets;
      }
    }
  }
  state.SetItemsProcessed(packets);
}

void BM_SaturatedDirect(benchmark::State& state) {
  auto sim = make_sim();
  if (!sim) {
    state.SkipWithError("create failed");
    return;
  }
  saturated_loop(state, *sim, sim->config().num_links);
}
BENCHMARK(BM_SaturatedDirect);

void BM_SaturatedBackend(benchmark::State& state) {
  auto sim = make_sim();
  if (!sim) {
    state.SkipWithError("create failed");
    return;
  }
  backend::HmcBackend hmc(*sim);
  backend::MemoryBackend& mem = hmc;  // Force virtual dispatch.
  saturated_loop(state, mem, mem.num_links());
}
BENCHMARK(BM_SaturatedBackend);

/// Full stack: registry-created synthetic frontend through the runner.
/// Items = requests completed, so packets/sec is comparable with the
/// saturated loops above.
void BM_SyntheticRunner(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  std::int64_t packets = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto sim = make_sim();
    if (!sim) {
      state.SkipWithError("create failed");
      return;
    }
    frontend::FrontendOptions opts;
    opts.set("count", std::to_string(count));
    opts.set("rate", "4");  // Past saturation: the queue stays backed up.
    std::unique_ptr<frontend::Frontend> fe;
    if (!frontend::FrontendRegistry::instance()
             .create("synthetic", opts, fe)
             .ok()) {
      state.SkipWithError("create frontend failed");
      return;
    }
    backend::HmcBackend mem(*sim);
    state.ResumeTiming();
    if (!frontend::run(mem, *fe).ok()) {
      state.SkipWithError("run failed");
      return;
    }
    packets += static_cast<std::int64_t>(count);
  }
  state.SetItemsProcessed(packets);
}
BENCHMARK(BM_SyntheticRunner)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
