// bench_mutex_vs_spinlock.cpp — the abstract's promise, measured:
// "a model to replace traditional thread mutexes with custom HMC mutex
// commands".
//
// Runs the same acquire-once/release-once contention experiment two ways:
//   * traditional: CAS spinlock through private coherent caches — the
//     lock line ping-pongs between cores via memory-reflected ownership
//     transfers (12 FLITs per bounce, Table II's cache-based accounting);
//   * CMC: the hmc_lock/hmc_trylock/hmc_unlock operations executing
//     in-memory (2-FLIT requests, 2-FLIT responses).
// Reports completion cycles and total link FLIT traffic for both.
#include <cstdio>

#include "mutex_sweep.hpp"
#include "src/host/cache/spinlock_driver.hpp"

using namespace hmcsim;

int main() {
  std::puts("# Traditional cache spinlock vs CMC mutex (4Link-4GB)");
  std::printf("%-8s %-12s %12s %12s %12s %14s %12s\n", "threads", "method",
              "max cycles", "avg cycles", "HMC flits", "flits/handoff",
              "bounces");

  bool cmc_always_wins = true;
  for (const std::uint32_t n : {2U, 4U, 8U, 16U, 32U, 64U}) {
    // Traditional spinlock through the cache hierarchy.
    host::SpinlockResult spin;
    {
      std::unique_ptr<sim::Simulator> sim;
      if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
        return 1;
      }
      host::SpinlockOptions opts;
      if (!host::run_spinlock_contention(*sim, n, opts, spin).ok()) {
        std::fprintf(stderr, "spinlock run failed (n=%u)\n", n);
        return 1;
      }
      const std::uint64_t flits = spin.hmc_rqst_flits + spin.hmc_rsp_flits;
      std::printf("%-8u %-12s %12llu %12.2f %12llu %14.1f %12llu\n", n,
                  "spinlock",
                  static_cast<unsigned long long>(spin.max_cycles),
                  spin.avg_cycles, static_cast<unsigned long long>(flits),
                  static_cast<double>(flits) / n,
                  static_cast<unsigned long long>(spin.line_bounces));
    }

    // CMC mutex.
    {
      const host::MutexResult cmc =
          bench::run_one(sim::Config::hmc_4link_4gb(), n);
      // Each op is 2 rqst + 2 rsp FLITs; count from the attempts.
      const std::uint64_t ops = static_cast<std::uint64_t>(n) * 2 /*lock+
          unlock*/ + cmc.trylock_attempts + cmc.lock_failures;
      const std::uint64_t flits = 4 * ops;
      std::printf("%-8u %-12s %12llu %12.2f %12llu %14.1f %12s\n", n,
                  "cmc-mutex",
                  static_cast<unsigned long long>(cmc.max_cycles),
                  cmc.avg_cycles, static_cast<unsigned long long>(flits),
                  static_cast<double>(flits) / n, "-");
      cmc_always_wins = cmc_always_wins && cmc.max_cycles < spin.max_cycles;
    }
  }
  std::printf("# CMC mutex faster at every contention level: %s\n",
              cmc_always_wins ? "yes" : "NO");
  std::puts("# note: at high contention the CMC side's *latency* advantage "
            "(~5x) comes with busy trylock polling, so its FLIT count "
            "grows with spin rounds; the spinlock instead serialises on "
            "coherence NACKs and pays ~12 FLITs per lock-line bounce "
            "through memory.");
  return cmc_always_wins ? 0 : 1;
}
