// mutex_sweep.hpp — shared driver for the paper's evaluation sweep.
//
// Figures 5, 6 and 7 and Table VI all come from the same experiment: run
// Algorithm 1 with 2..100 threads on the 4Link-4GB and 8Link-8GB devices
// and record MIN/MAX/AVG lock cycles per run. Each bench binary re-runs the
// sweep (it is fast) and prints its own series.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "plugins/builtin.h"
#include "src/host/mutex_driver.hpp"
#include "src/sim/simulator.hpp"

namespace hmcsim::bench {

struct SweepPoint {
  std::uint32_t threads = 0;
  host::MutexResult r4;  ///< 4Link-4GB result.
  host::MutexResult r8;  ///< 8Link-8GB result.
};

inline void register_mutex_ops(sim::Simulator& sim) {
  struct Op {
    hmcsim_cmc_register_fn reg;
    hmcsim_cmc_execute_fn exec;
    hmcsim_cmc_str_fn str;
  };
  const Op ops[] = {
      {hmcsim_builtin_lock_register, hmcsim_builtin_lock_execute,
       hmcsim_builtin_lock_str},
      {hmcsim_builtin_trylock_register, hmcsim_builtin_trylock_execute,
       hmcsim_builtin_trylock_str},
      {hmcsim_builtin_unlock_register, hmcsim_builtin_unlock_execute,
       hmcsim_builtin_unlock_str},
  };
  for (const Op& op : ops) {
    if (!sim.register_cmc(op.reg, op.exec, op.str).ok()) {
      std::fprintf(stderr, "mutex CMC registration failed\n");
      std::exit(1);
    }
  }
}

inline host::MutexResult run_one(const sim::Config& cfg,
                                 std::uint32_t threads) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(cfg, sim).ok()) {
    std::fprintf(stderr, "simulator creation failed\n");
    std::exit(1);
  }
  register_mutex_ops(*sim);
  host::MutexOptions opts;
  opts.lock_addr = 0x4000;
  host::MutexResult result;
  if (const Status s = host::run_mutex_contention(*sim, threads, opts, result);
      !s.ok()) {
    std::fprintf(stderr, "mutex run failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  return result;
}

/// The paper's sweep: "We varied the number of threads from two to one
/// hundred threads for each of the respective configurations."
inline std::vector<SweepPoint> run_sweep(std::uint32_t from = 2,
                                         std::uint32_t to = 100) {
  std::vector<SweepPoint> points;
  points.reserve(to - from + 1);
  for (std::uint32_t t = from; t <= to; ++t) {
    SweepPoint p;
    p.threads = t;
    p.r4 = run_one(sim::Config::hmc_4link_4gb(), t);
    p.r8 = run_one(sim::Config::hmc_8link_8gb(), t);
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace hmcsim::bench
