// bench_ablation_queues.cpp — ablation of the design choices behind the
// 4-link/8-link divergence (DESIGN.md §5).
//
// The paper attributes the >50-thread divergence to "the distributions of
// requests across the additional 8 links and their associated request and
// crossbar queuing structures". This bench isolates each knob at 99
// threads:
//   1. crossbar forwarding bandwidth (the calibrated default vs unbounded)
//   2. vault request queue depth
//   3. crossbar queue depth
// and reports the resulting MAX/AVG lock cycles on both devices.
#include <cstdio>

#include "mutex_sweep.hpp"

using namespace hmcsim;

namespace {

void run_pair(const char* label, sim::Config c4, sim::Config c8,
              std::uint32_t threads = 99) {
  const host::MutexResult r4 = bench::run_one(c4, threads);
  const host::MutexResult r8 = bench::run_one(c8, threads);
  std::printf("%-44s %8llu %8.2f   %8llu %8.2f   %+6.2f%%\n", label,
              static_cast<unsigned long long>(r4.max_cycles), r4.avg_cycles,
              static_cast<unsigned long long>(r8.max_cycles), r8.avg_cycles,
              100.0 * (r4.avg_cycles - r8.avg_cycles) / r4.avg_cycles);
}

}  // namespace

int main() {
  std::puts("# Ablation: queueing knobs at 99 threads (Algorithm 1)");
  std::printf("%-44s %8s %8s   %8s %8s   %7s\n", "configuration", "4L max",
              "4L avg", "8L max", "8L avg", "8L adv");

  {
    const sim::Config c4 = sim::Config::hmc_4link_4gb();
    const sim::Config c8 = sim::Config::hmc_8link_8gb();
    run_pair("baseline (paper queues, bw=26 flits/link)", c4, c8);
  }
  {
    sim::Config c4 = sim::Config::hmc_4link_4gb();
    sim::Config c8 = sim::Config::hmc_8link_8gb();
    c4.xbar_rqst_bw_flits = c4.xbar_rsp_bw_flits = 0;
    c8.xbar_rqst_bw_flits = c8.xbar_rsp_bw_flits = 0;
    run_pair("unbounded xbar bandwidth", c4, c8);
  }
  {
    sim::Config c4 = sim::Config::hmc_4link_4gb();
    sim::Config c8 = sim::Config::hmc_8link_8gb();
    c4.xbar_rqst_bw_flits = c4.xbar_rsp_bw_flits = 17;
    c8.xbar_rqst_bw_flits = c8.xbar_rsp_bw_flits = 17;
    run_pair("narrow xbar bandwidth (17 flits/link)", c4, c8);
  }
  for (const std::uint32_t depth : {8U, 16U, 32U, 64U, 256U}) {
    sim::Config c4 = sim::Config::hmc_4link_4gb();
    sim::Config c8 = sim::Config::hmc_8link_8gb();
    c4.vault_rqst_depth = c8.vault_rqst_depth = depth;
    char label[64];
    std::snprintf(label, sizeof(label), "vault request queue depth = %u",
                  depth);
    run_pair(label, c4, c8);
  }
  for (const std::uint32_t depth : {32U, 64U, 128U, 512U}) {
    sim::Config c4 = sim::Config::hmc_4link_4gb();
    sim::Config c8 = sim::Config::hmc_8link_8gb();
    c4.xbar_depth = c8.xbar_depth = depth;
    char label[64];
    std::snprintf(label, sizeof(label), "crossbar queue depth = %u", depth);
    run_pair(label, c4, c8);
  }

  // Hot-spot ablation: the paper's single lock vs locks spread across
  // vaults (thread t uses lock t mod N; stride = one interleave block).
  std::puts("#");
  std::puts("# hot-spot ablation at 99 threads (locks spread over vaults):");
  for (const std::uint32_t locks : {1U, 2U, 4U, 8U, 16U, 32U}) {
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
      return 1;
    }
    bench::register_mutex_ops(*sim);
    host::MutexOptions mopts;
    mopts.lock_addr = 0x4000;
    mopts.num_locks = locks;
    host::MutexResult r;
    if (!host::run_mutex_contention(*sim, 99, mopts, r).ok()) {
      return 1;
    }
    std::printf("#   %2u lock%s: max=%llu avg=%.2f\n", locks,
                locks == 1 ? " " : "s",
                static_cast<unsigned long long>(r.max_cycles),
                r.avg_cycles);
  }

  std::puts("#");
  std::puts("# thread counts where divergence first appears "
            "(baseline config):");
  std::uint32_t first_diverge = 0;
  for (std::uint32_t t = 2; t <= 100; ++t) {
    const host::MutexResult r4 =
        bench::run_one(sim::Config::hmc_4link_4gb(), t);
    const host::MutexResult r8 =
        bench::run_one(sim::Config::hmc_8link_8gb(), t);
    if (r4.avg_cycles != r8.avg_cycles || r4.max_cycles != r8.max_cycles) {
      first_diverge = t;
      break;
    }
  }
  std::printf("# first divergence at %u threads (paper: beyond fifty)\n",
              first_diverge);
  return 0;
}
