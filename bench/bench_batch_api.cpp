// bench_batch_api.cpp — packets/sec of the three submission surfaces.
//
// The same saturated read workload (kBatch requests sharded round-robin
// over the links and cubes of a 4-cube chain, run to completion) is driven
// through:
//
//   BM_PacketAtATime   the canonical synchronous C-API loop (the
//                      send / clock-until-response / recv idiom): one
//                      packet in flight at a time
//   BM_PipelinedCapi   per-packet C API, but the host pipelines: clock
//                      once per send, harvest responses as they stream
//   BM_BatchedCapi     hmcsim_send_batch / hmcsim_batch_advance /
//                      hmcsim_poll_batch (one API crossing per batch)
//   BM_BatchedSession  the C++ sim::Session underneath the C shim
//   BM_ShmRingCosim    a full co-simulation hop: server thread + the C
//                      client library over POSIX-shm SPSC rings
//
// The headline arms run the flagship scaling configuration: the paper's
// 4-cube chain on the sharded parallel backend (one worker thread per
// cube, deterministic conservative sync). That is the configuration where
// the submission surface decides throughput: every clock crosses a worker
// barrier, so a per-packet driver pays the full round trip in barriers per
// packet while a batch pays one clock span per ~kBatch packets. The
// *SingleShard variants run the identical workload on the in-line
// single-threaded backend for transparency — there clocking is cheap and
// the surfaces converge, batching's win reducing to one API crossing per
// batch.
//
// Acceptance for the batched path (BENCH_batch_api.json in CI): at least
// 2x the packets/sec of BM_PacketAtATime — batching admits a whole batch
// per clock span instead of one request per crossing.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/backend/backend.hpp"
#include "src/capi/hmc_cosim_client.h"
#include "src/capi/hmc_sim.h"
#include "src/ipc/cosim_server.hpp"
#include "src/sim/session.hpp"
#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

constexpr std::uint32_t kBatch = 256;
constexpr std::uint32_t kLinks = 4;
constexpr std::uint32_t kCubes = 4;

std::uint64_t bench_addr(std::uint32_t i) {
  return (static_cast<std::uint64_t>(i) * 4096 + (i % 7) * 64) % (1 << 20);
}

hmc_sim_t* bench_init(bool sharded) {
  hmc_sim_t* sim = hmcsim_init(kCubes, kLinks, 4, 64, 64, 128);
  if (sim != nullptr && sharded) {
    hmcsim_set_threads(sim, kCubes);
  }
  return sim;
}

void run_packet_at_a_time(benchmark::State& state, bool sharded) {
  hmc_sim_t* sim = bench_init(sharded);
  if (sim == nullptr) {
    state.SkipWithError("init failed");
    return;
  }
  std::int64_t packets = 0;
  std::uint16_t tag = 0;
  uint64_t payload[32];
  // The synchronous per-packet idiom: submit one request, clock until its
  // response lands, only then submit the next. One packet in flight —
  // every request pays the full round-trip latency in clocks.
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      const std::uint16_t t = static_cast<std::uint16_t>(tag++ & 0x7FF);
      while (hmcsim_send(sim, i % kLinks, HMC_RD64, i % kCubes, bench_addr(i),
                         t, nullptr, 0) == HMC_STALL) {
        hmcsim_clock(sim);
      }
      for (;;) {
        hmcsim_clock(sim);
        uint32_t words = 32;
        if (hmcsim_recv(sim, i % kLinks, nullptr, nullptr, payload, &words,
                        nullptr) == HMC_OK) {
          ++packets;
          break;
        }
      }
    }
  }
  state.SetItemsProcessed(packets);
  hmcsim_free(sim);
}

void run_pipelined_capi(benchmark::State& state, bool sharded) {
  hmc_sim_t* sim = bench_init(sharded);
  if (sim == nullptr) {
    state.SkipWithError("init failed");
    return;
  }
  std::int64_t packets = 0;
  std::uint16_t tag = 0;
  uint64_t payload[32];
  // A hand-tuned per-packet host: keeps the links saturated, clocks once
  // per submission, streams responses back. The best the per-packet API
  // can do — the batch API's job is to package exactly this loop.
  auto clock_and_drain = [&](std::uint32_t& received) {
    hmcsim_clock(sim);
    for (std::uint32_t link = 0; link < kLinks; ++link) {
      uint32_t words = 32;
      while (hmcsim_recv(sim, link, nullptr, nullptr, payload, &words,
                         nullptr) == HMC_OK) {
        ++received;
        words = 32;
      }
    }
  };
  for (auto _ : state) {
    std::uint32_t received = 0;
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      const std::uint16_t t = static_cast<std::uint16_t>(tag++ & 0x7FF);
      while (hmcsim_send(sim, i % kLinks, HMC_RD64, i % kCubes, bench_addr(i),
                         t, nullptr, 0) == HMC_STALL) {
        clock_and_drain(received);
      }
    }
    while (received < kBatch) {
      clock_and_drain(received);
    }
    packets += received;
  }
  state.SetItemsProcessed(packets);
  hmcsim_free(sim);
}

void run_batched_capi(benchmark::State& state, bool sharded) {
  hmc_sim_t* sim = bench_init(sharded);
  if (sim == nullptr) {
    state.SkipWithError("init failed");
    return;
  }
  std::vector<hmc_batch_rqst_t> reqs(kBatch);
  std::vector<hmc_batch_rsp_t> rsps(kBatch);
  std::int64_t packets = 0;
  std::uint16_t tag = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      reqs[i] = {};
      reqs[i].rqst = HMC_RD64;
      reqs[i].tag = static_cast<std::uint16_t>(tag++ & 0x7FF);
      reqs[i].cub = static_cast<std::uint8_t>(i % kCubes);
      reqs[i].addr = bench_addr(i);
    }
    hmc_ticket_t ticket = 0;
    if (hmcsim_send_batch(sim, reqs.data(), kBatch, HMC_LINK_ANY, &ticket) !=
        HMC_OK) {
      state.SkipWithError("send_batch failed");
      break;
    }
    hmcsim_batch_advance(sim, ticket, 0);
    uint32_t count = kBatch;
    if (hmcsim_poll_batch(sim, ticket, rsps.data(), &count) != HMC_OK) {
      state.SkipWithError("poll_batch did not complete");
      break;
    }
    packets += count;
  }
  state.SetItemsProcessed(packets);
  hmcsim_free(sim);
}

void run_batched_session(benchmark::State& state, bool sharded) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.num_devs = kCubes;
  std::unique_ptr<sim::Simulator> simulator;
  if (!sim::Simulator::create(cfg, simulator).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  if (sharded) {
    (void)simulator->set_threads(kCubes);
  }
  sim::Session session(*simulator);
  std::int64_t packets = 0;
  session.set_on_complete(
      [&packets](sim::BatchTicket, const sim::Response& rsp) {
        benchmark::DoNotOptimize(rsp);
        ++packets;
      });
  std::vector<spec::RqstParams> reqs(kBatch);
  std::uint16_t tag = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      reqs[i] = {};
      reqs[i].rqst = spec::Rqst::RD64;
      reqs[i].tag = static_cast<std::uint16_t>(tag++ & spec::kMaxTag);
      reqs[i].cub = static_cast<std::uint8_t>(i % kCubes);
      reqs[i].addr = bench_addr(i);
    }
    sim::BatchTicket ticket = sim::kInvalidTicket;
    if (!session.send_batch(reqs, ticket).ok() ||
        !session.wait_batch(ticket).ok()) {
      state.SkipWithError("batch failed");
      break;
    }
  }
  state.SetItemsProcessed(packets);
}

// ---- headline arms: 4-cube chain on the sharded parallel backend --------

void BM_PacketAtATime(benchmark::State& state) {
  run_packet_at_a_time(state, true);
}
BENCHMARK(BM_PacketAtATime)->Unit(benchmark::kMicrosecond);

void BM_PipelinedCapi(benchmark::State& state) {
  run_pipelined_capi(state, true);
}
BENCHMARK(BM_PipelinedCapi)->Unit(benchmark::kMicrosecond);

void BM_BatchedCapi(benchmark::State& state) { run_batched_capi(state, true); }
BENCHMARK(BM_BatchedCapi)->Unit(benchmark::kMicrosecond);

void BM_BatchedSession(benchmark::State& state) {
  run_batched_session(state, true);
}
BENCHMARK(BM_BatchedSession)->Unit(benchmark::kMicrosecond);

// ---- transparency arms: same workload, in-line single-threaded backend --

void BM_PacketAtATimeSingleShard(benchmark::State& state) {
  run_packet_at_a_time(state, false);
}
BENCHMARK(BM_PacketAtATimeSingleShard)->Unit(benchmark::kMicrosecond);

void BM_PipelinedCapiSingleShard(benchmark::State& state) {
  run_pipelined_capi(state, false);
}
BENCHMARK(BM_PipelinedCapiSingleShard)->Unit(benchmark::kMicrosecond);

void BM_BatchedCapiSingleShard(benchmark::State& state) {
  run_batched_capi(state, false);
}
BENCHMARK(BM_BatchedCapiSingleShard)->Unit(benchmark::kMicrosecond);

void BM_BatchedSessionSingleShard(benchmark::State& state) {
  run_batched_session(state, false);
}
BENCHMARK(BM_BatchedSessionSingleShard)->Unit(benchmark::kMicrosecond);

void BM_ShmRingCosim(benchmark::State& state) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.num_devs = kCubes;
  std::unique_ptr<backend::MemoryBackend> mem;
  if (!backend::BackendRegistry::instance().create("hmc", cfg, mem).ok()) {
    state.SkipWithError("backend failed");
    return;
  }
  ipc::CosimOptions opts;
  opts.socket_path =
      "/tmp/hmcsim-bench-cosim-" + std::to_string(::getpid()) + ".sock";
  opts.quantum = 64;
  ipc::CosimServer server(*mem, opts);
  if (!server.bind().ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  std::thread srv([&server] { (void)server.serve(); });
  hmc_cosim_t* client = hmc_cosim_connect(opts.socket_path.c_str(), 0, 10000);
  if (client == nullptr) {
    server.request_stop();
    srv.join();
    state.SkipWithError("connect failed");
    return;
  }

  std::int64_t packets = 0;
  std::uint16_t tag = 0;
  uint64_t payload[HMC_COSIM_PAYLOAD_WORDS];
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      hmc_cosim_send(client, i % kLinks, 51 /* RD64 */, i % kCubes,
                     bench_addr(i),
                     static_cast<std::uint16_t>(tag++ & 0x7FF), nullptr, 0);
    }
    std::uint32_t received = 0;
    while (received < kBatch) {
      hmc_cosim_clock(client, opts.quantum);
      uint32_t words = HMC_COSIM_PAYLOAD_WORDS;
      while (hmc_cosim_recv(client, nullptr, nullptr, payload, &words,
                            nullptr) == HMC_COSIM_OK) {
        ++received;
        words = HMC_COSIM_PAYLOAD_WORDS;
      }
    }
    packets += received;
  }
  state.SetItemsProcessed(packets);
  hmc_cosim_disconnect(client);
  srv.join();
}
BENCHMARK(BM_ShmRingCosim)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
