// bench_fig7_avg_cycles.cpp — regenerates Figure 7: "Average Lock Cycles".
//
// Series: AVG_CYCLE vs thread count (2..100) for both devices. Expected
// shape: linear growth at roughly half the MAX slope, identical through
// ~50 threads, 8-link slightly better beyond — the paper's maxima of the
// averages are 226.48 (4Link @ 99) and 221.48 (8Link @ 100).
#include <cstdio>

#include "mutex_sweep.hpp"

int main() {
  std::puts("# Figure 7: Average Lock Cycles");
  std::puts("threads,avg_4link4gb,avg_8link8gb");
  const auto sweep = hmcsim::bench::run_sweep();
  double worst4 = 0;
  std::uint32_t worst4_at = 0;
  double worst8 = 0;
  std::uint32_t worst8_at = 0;
  for (const auto& p : sweep) {
    std::printf("%u,%.2f,%.2f\n", p.threads, p.r4.avg_cycles,
                p.r8.avg_cycles);
    if (p.r4.avg_cycles > worst4) {
      worst4 = p.r4.avg_cycles;
      worst4_at = p.threads;
    }
    if (p.r8.avg_cycles > worst8) {
      worst8 = p.r8.avg_cycles;
      worst8_at = p.threads;
    }
  }
  std::printf("# max average: 4Link=%.2f @ %u threads, 8Link=%.2f @ %u "
              "threads (paper: 226.48 @ 99, 221.48 @ 100)\n",
              worst4, worst4_at, worst8, worst8_at);
  std::printf("# 8Link advantage: %.1f%% (paper: 2.2%%)\n",
              100.0 * (1.0 - worst8 / worst4));
  return 0;
}
