// bench_power.cpp — energy estimates for the evaluation workloads (the
// paper's §VII future-work extension, exercised end to end).
//
// Prices each kernel and the mutex contention experiment with the
// activity-based power model and reports energy split and efficiency —
// including the PIM-vs-host energy comparison that complements Table II's
// bandwidth argument.
#include <cstdio>
#include <memory>

#include "mutex_sweep.hpp"
#include "src/host/kernels/random_access.hpp"
#include "src/host/kernels/stream_triad.hpp"
#include "src/power/power_model.hpp"
#include "src/sim/sim_stats.hpp"

using namespace hmcsim;

namespace {

void report(const char* name, const power::PowerModel& model,
            const power::Activity& activity, std::uint64_t useful_bytes) {
  const power::EnergyReport r = model.estimate(activity);
  const double ns = model.segment_ns(activity);
  std::printf("%-24s %10.1f %10.1f %10.1f %10.1f %10.2f %10.3f\n", name,
              r.dynamic_nj(), r.static_nj, r.total_nj(),
              r.avg_power_mw(ns), ns / 1000.0, r.nj_per_byte(useful_bytes));
}

}  // namespace

int main() {
  const power::PowerModel model;
  std::puts("# Energy estimation (activity-based model, default HMC "
            "coefficients)");
  std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", "workload", "dyn nJ",
              "static nJ", "total nJ", "avg mW", "time us", "nJ/byte");

  // STREAM Triad.
  {
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
      return 1;
    }
    const auto before = sim::collect_stats(*sim);
    host::StreamTriadOptions opts;
    opts.elements = 8192;
    opts.concurrency = 64;
    host::KernelResult kr;
    if (!host::run_stream_triad(*sim, opts, kr).ok()) {
      return 1;
    }
    report("stream-triad", model, power::delta(before, sim::collect_stats(*sim)),
           3 * opts.elements * 8);
  }

  // GUPS: host RMW vs PIM atomic — the energy side of the PIM argument.
  for (const auto& [mode, name] :
       {std::pair{host::GupsMode::ReadModifyWrite, "gups host-rmw"},
        std::pair{host::GupsMode::Atomic, "gups xor16-pim"}}) {
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
      return 1;
    }
    const auto before = sim::collect_stats(*sim);
    host::RandomAccessOptions opts;
    opts.table_words = 1 << 16;
    opts.updates = 8192;
    opts.concurrency = 64;
    opts.mode = mode;
    host::KernelResult kr;
    if (!host::run_random_access(*sim, opts, kr).ok()) {
      return 1;
    }
    report(name, model, power::delta(before, sim::collect_stats(*sim)),
           opts.updates * 8);
  }

  // Mutex contention at three contention levels.
  for (const std::uint32_t threads : {8U, 50U, 100U}) {
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
      return 1;
    }
    bench::register_mutex_ops(*sim);
    const auto before = sim::collect_stats(*sim);
    host::MutexOptions opts;
    opts.lock_addr = 0x4000;
    host::MutexResult mr;
    if (!host::run_mutex_contention(*sim, threads, opts, mr).ok()) {
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "mutex %u threads", threads);
    report(label, model, power::delta(before, sim::collect_stats(*sim)),
           threads * 16ULL);
  }

  std::puts("# expected shape: xor16-pim spends less total energy per "
            "update than host-rmw (fewer link FLITs dominate the dynamic "
            "term).");
  return 0;
}
