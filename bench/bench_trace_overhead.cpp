// bench_trace_overhead.cpp — cost of per-packet latency attribution.
//
// Saturated round-trip traffic (every link busy every cycle) under three
// observability settings:
//
//   off      tracing disabled — the pay-for-what-you-use baseline; the
//            journey hot path must be one integer compare per packet
//            (the ISSUE budget: < 2% below the seed's throughput)
//   journey  trace::Level::Journey + the host.stage.* histograms (the
//            --stage-stats configuration)
//   chrome   journey plus a ChromeSink streaming every span and slice
//            to a discarding stream (the --trace-chrome configuration;
//            bounded by JSON formatting, not simulation)
//
// Rates are retired packets per second via items_processed. CI exports
// the report as BENCH_trace_overhead.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <ostream>
#include <streambuf>

#include "src/sim/simulator.hpp"
#include "src/trace/chrome_sink.hpp"

using namespace hmcsim;

namespace {

/// Discards everything: the chrome case measures formatting, not disk.
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

enum class Mode { Off, Journey, Chrome };

void BM_SaturatedTraffic(benchmark::State& state, Mode mode) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  NullBuffer null_buf;
  std::ostream null_stream(&null_buf);
  trace::ChromeSink chrome(null_stream);
  if (mode != Mode::Off) {
    sim->tracer().set_level(sim->tracer().level() | trace::Level::Journey);
  }
  if (mode == Mode::Chrome) {
    sim->tracer().attach(&chrome);
    sim->journeys().attach(&chrome);
  }

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  sim::Response rsp;
  std::int64_t retired = 0;
  for (auto _ : state) {
    for (std::uint32_t link = 0; link < 4; ++link) {
      rd.tag = tag++ & spec::kMaxTag;
      rd.addr = (static_cast<std::uint64_t>(rd.tag) * 64) % (1 << 20);
      (void)sim->send(rd, link);
    }
    sim->clock();
    for (std::uint32_t link = 0; link < 4; ++link) {
      while (sim->recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
        ++retired;
      }
    }
  }
  state.SetItemsProcessed(retired);
}

}  // namespace

BENCHMARK_CAPTURE(BM_SaturatedTraffic, off, Mode::Off);
BENCHMARK_CAPTURE(BM_SaturatedTraffic, journey, Mode::Journey);
BENCHMARK_CAPTURE(BM_SaturatedTraffic, chrome, Mode::Chrome);

BENCHMARK_MAIN();
