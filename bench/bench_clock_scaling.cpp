// bench_clock_scaling.cpp — clock-scheduler scaling benchmarks.
//
// Measures the event-driven active-set scheduler and the quiescence
// fast-forward against the exhaustive HMC-Sim walk, on the occupancy
// regimes that matter:
//
//   idle       empty queues (the cost floor of clock())
//   ff         clock_until() across a dead stretch (O(1) per jump)
//   sparse     1% duty cycle (one request, then 100 quiet cycles)
//   spin-wait  the paper's mutex contention experiment (Algorithm 1)
//   saturated  every link busy every cycle (the scheduler's overhead
//              ceiling: must stay within noise of the exhaustive walk)
//
// Every scenario runs twice — active (default) and exhaustive
// (Config::exhaustive_clock) — so one JSON report carries its own
// baseline. Rates are cycles/second via items_processed.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "mutex_sweep.hpp"
#include "src/host/mutex_driver.hpp"
#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

std::unique_ptr<sim::Simulator> make_sim(benchmark::State& state,
                                         bool exhaustive) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.exhaustive_clock = exhaustive;
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(cfg, sim).ok()) {
    state.SkipWithError("create failed");
  }
  return sim;
}

/// Per-cycle cost of clock() with every queue empty.
void BM_IdleClock(benchmark::State& state, bool exhaustive) {
  auto sim = make_sim(state, exhaustive);
  if (!sim) {
    return;
  }
  for (auto _ : state) {
    sim->clock();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Cost of covering a 4096-cycle dead stretch with clock_until(). The
/// active scheduler jumps it in O(1); the exhaustive configuration steps
/// every cycle. Rate is simulated cycles per second.
void BM_IdleFastForward(benchmark::State& state, bool exhaustive) {
  constexpr std::uint64_t kSpan = 4096;
  auto sim = make_sim(state, exhaustive);
  if (!sim) {
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->clock_until(sim->cycle() + kSpan));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSpan));
}

/// 1% duty cycle: one read, then a 100-cycle quiet window (a host doing
/// real work between memory operations). Rate is simulated cycles/second.
void BM_SparseTraffic(benchmark::State& state, bool exhaustive) {
  constexpr std::uint64_t kWindow = 100;
  auto sim = make_sim(state, exhaustive);
  if (!sim) {
    return;
  }
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  sim::Response rsp;
  for (auto _ : state) {
    rd.tag = tag++ & spec::kMaxTag;
    rd.addr = (static_cast<std::uint64_t>(rd.tag) * 64) % (1 << 20);
    (void)sim->send(rd, rd.tag % 4);
    // clock_until honours exhaustive_clock, so both arms execute the
    // identical scenario; only the scheduler differs.
    (void)sim->clock_until(sim->cycle() + kWindow);
    for (std::uint32_t link = 0; link < 4; ++link) {
      while (sim->recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
}

/// The paper's Algorithm 1 under contention, spin-waiting with backoff:
/// 32 threads fight for one lock and every loser waits out a 256-cycle
/// backoff before its next TRYLOCK. Most simulated time is spent with
/// every thread backing off and every queue empty — dead spans the
/// active scheduler crosses with clock_until while the exhaustive walk
/// clocks each cycle. Rate is simulated cycles per second.
void BM_MutexSpinWait(benchmark::State& state, bool exhaustive) {
  constexpr std::uint32_t kThreads = 32;
  // Sim construction is ~100x the cost of one contention run: build it
  // once and time only the runs, so the measurement is clock cycles.
  auto sim = make_sim(state, exhaustive);
  if (!sim) {
    return;
  }
  bench::register_mutex_ops(*sim);
  host::MutexOptions opts;
  opts.lock_addr = 0x4000;
  opts.trylock_backoff = 256;
  std::int64_t cycles = 0;
  for (auto _ : state) {
    host::MutexResult result;
    if (!host::run_mutex_contention(*sim, kThreads, opts, result).ok()) {
      state.SkipWithError("mutex run failed");
      return;
    }
    cycles += static_cast<std::int64_t>(result.total_cycles);
    state.counters["fast_forwarded"] =
        static_cast<double>(result.fast_forwarded);
  }
  state.SetItemsProcessed(cycles);
}

/// Every link carries a request every cycle: the active-set bookkeeping's
/// overhead ceiling. Must stay within noise of the exhaustive walk.
void BM_Saturated(benchmark::State& state, bool exhaustive) {
  auto sim = make_sim(state, exhaustive);
  if (!sim) {
    return;
  }
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  sim::Response rsp;
  for (auto _ : state) {
    for (std::uint32_t link = 0; link < 4; ++link) {
      rd.tag = tag++ & spec::kMaxTag;
      rd.addr = (static_cast<std::uint64_t>(rd.tag) * 64) % (1 << 20);
      (void)sim->send(rd, link);
    }
    sim->clock();
    for (std::uint32_t link = 0; link < 4; ++link) {
      while (sim->recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_IdleClock, active, false);
BENCHMARK_CAPTURE(BM_IdleClock, exhaustive, true);
BENCHMARK_CAPTURE(BM_IdleFastForward, active, false);
BENCHMARK_CAPTURE(BM_IdleFastForward, exhaustive, true);
BENCHMARK_CAPTURE(BM_SparseTraffic, active, false);
BENCHMARK_CAPTURE(BM_SparseTraffic, exhaustive, true);
BENCHMARK_CAPTURE(BM_MutexSpinWait, active, false);
BENCHMARK_CAPTURE(BM_MutexSpinWait, exhaustive, true);
BENCHMARK_CAPTURE(BM_Saturated, active, false);
BENCHMARK_CAPTURE(BM_Saturated, exhaustive, true);

BENCHMARK_MAIN();
