// bench_fig5_min_cycles.cpp — regenerates Figure 5: "Minimum Lock Cycles".
//
// Series: MIN_CYCLE vs thread count (2..100) for the 4Link-4GB and
// 8Link-8GB devices. The paper's shape: both flat at 6 cycles, identical
// through ~50 threads, with the 8-link device showing no worse minima
// beyond.
#include <algorithm>
#include <cstdio>

#include "mutex_sweep.hpp"

int main() {
  std::puts("# Figure 5: Minimum Lock Cycles");
  std::puts("# Algorithm 1, single shared lock, rqst queue 64, xbar queue "
            "128, 64B max block");
  std::puts("threads,min_4link4gb,min_8link8gb");
  const auto sweep = hmcsim::bench::run_sweep();
  for (const auto& p : sweep) {
    std::printf("%u,%llu,%llu\n", p.threads,
                static_cast<unsigned long long>(p.r4.min_cycles),
                static_cast<unsigned long long>(p.r8.min_cycles));
  }

  std::uint64_t overall4 = ~0ULL;
  std::uint64_t overall8 = ~0ULL;
  for (const auto& p : sweep) {
    overall4 = std::min(overall4, p.r4.min_cycles);
    overall8 = std::min(overall8, p.r8.min_cycles);
  }
  std::printf("# overall MIN_CYCLE: 4Link=%llu 8Link=%llu "
              "(paper Table VI: 6 / 6)\n",
              static_cast<unsigned long long>(overall4),
              static_cast<unsigned long long>(overall8));
  return 0;
}
