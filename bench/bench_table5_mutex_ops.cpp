// bench_table5_mutex_ops.cpp — regenerates Table V: "CMC Mutex Operations".
//
// Prints the registration data of the three mutex CMC operations straight
// from the live registry (proving the plugin registrations carry exactly
// the paper's parameters), then benchmarks each operation's full
// send->execute->recv round trip with google-benchmark.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <memory>

#include "mutex_sweep.hpp"

using namespace hmcsim;

namespace {

void print_table5(const cmc::CmcRegistry& registry) {
  std::puts("# Table V: CMC Mutex Operations (live registry state)");
  std::printf("%-12s %-14s %-10s %-10s %-10s %-10s\n", "Operation",
              "Command Enum", "Rqst Cmd", "Rqst Len", "Rsp Cmd", "Rsp Len");
  for (const spec::Rqst rqst :
       {spec::Rqst::CMC125, spec::Rqst::CMC126, spec::Rqst::CMC127}) {
    const cmc::CmcOp* op = registry.lookup(rqst);
    if (op == nullptr) {
      std::puts("  <missing registration>");
      continue;
    }
    std::printf("%-12s %-14s %-10u %-10s %-10s %-10s\n", op->name.c_str(),
                std::string(spec::to_string(rqst)).c_str(), op->cmd,
                (std::to_string(op->rqst_len) + " FLITS").c_str(),
                std::string(spec::to_string(op->rsp_cmd)).c_str(),
                std::to_string(op->rsp_len).c_str());
  }
  std::puts("# paper: hmc_lock CMC125/WR_RS, hmc_trylock CMC126/RD_RS, "
            "hmc_unlock CMC127/WR_RS; all 2-FLIT rqst, 2-FLIT rsp\n");
}

/// One uncontended CMC round trip per iteration.
void BM_MutexOpRoundTrip(benchmark::State& state, spec::Rqst rqst) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  bench::register_mutex_ops(*sim);
  const std::array<std::uint64_t, 2> tid{1, 0};
  spec::RqstParams p;
  p.rqst = rqst;
  p.addr = 0x4000;
  p.payload = tid;

  for (auto _ : state) {
    if (!sim->send(p, 0).ok()) {
      state.SkipWithError("send failed");
      return;
    }
    while (!sim->rsp_ready(0)) {
      sim->clock();
    }
    sim::Response rsp;
    benchmark::DoNotOptimize(sim->recv(0, rsp));
    // Unlock between lock iterations so the lock is always acquirable.
    if (rqst != spec::Rqst::CMC127) {
      spec::RqstParams unlock = p;
      unlock.rqst = spec::Rqst::CMC127;
      if (sim->send(unlock, 0).ok()) {
        while (!sim->rsp_ready(0)) {
          sim->clock();
        }
        (void)sim->recv(0, rsp);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// A full Algorithm 1 run per iteration, at a fixed contention level.
void BM_MutexContention(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t total_cycles = 0;
  for (auto _ : state) {
    const host::MutexResult r =
        bench::run_one(sim::Config::hmc_4link_4gb(), threads);
    benchmark::DoNotOptimize(r.max_cycles);
    total_cycles += r.total_cycles;
  }
  state.counters["sim_cycles"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kAvgIterations);
}

}  // namespace

BENCHMARK_CAPTURE(BM_MutexOpRoundTrip, hmc_lock, spec::Rqst::CMC125);
BENCHMARK_CAPTURE(BM_MutexOpRoundTrip, hmc_trylock, spec::Rqst::CMC126);
BENCHMARK_CAPTURE(BM_MutexOpRoundTrip, hmc_unlock, spec::Rqst::CMC127);
BENCHMARK(BM_MutexContention)->Arg(8)->Arg(32)->Arg(100);

int main(int argc, char** argv) {
  {
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
      return 1;
    }
    bench::register_mutex_ops(*sim);
    print_table5(sim->cmc_registry());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
