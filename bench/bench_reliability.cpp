// bench_reliability.cpp — link-error-rate sweep.
//
// Sweeps the per-FLIT corruption probability and reports the retry count,
// achieved latency and effective bandwidth of a fixed workload, showing
// how the CRC/retry protocol degrades gracefully instead of corrupting
// data (every run is verified).
#include <cstdio>
#include <memory>

#include "src/host/kernels/random_access.hpp"
#include "src/sim/sim_stats.hpp"
#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

/// Mean uncontended RD64 latency at a given error rate.
double probe_latency(std::uint32_t ppm) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = ppm;
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(cfg, sim).ok()) {
    std::exit(1);
  }
  std::uint64_t total = 0;
  constexpr int kProbes = 500;
  for (int i = 0; i < kProbes; ++i) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD64;
    rd.addr = static_cast<std::uint64_t>(i % 128) * 64;
    if (!sim->send(rd, 0).ok()) {
      std::exit(1);
    }
    while (!sim->rsp_ready(0)) {
      sim->clock();
    }
    sim::Response rsp;
    (void)sim->recv(0, rsp);
    total += rsp.latency;
  }
  return static_cast<double>(total) / kProbes;
}

}  // namespace

int main() {
  std::puts("# Link reliability sweep (CRC retry protocol)");
  std::printf("%-12s %12s %12s %12s %12s %10s\n", "FLIT err", "GUPS cycles",
              "retries", "rqst FLITs", "B/cycle", "RD64 lat");

  for (const std::uint32_t ppm :
       {0U, 1'000U, 10'000U, 50'000U, 100'000U, 250'000U}) {
    sim::Config cfg = sim::Config::hmc_4link_4gb();
    cfg.link_flit_error_ppm = ppm;
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(cfg, sim).ok()) {
      return 1;
    }
    host::RandomAccessOptions opts;
    opts.table_words = 1 << 14;
    opts.updates = 4096;
    opts.concurrency = 64;
    opts.mode = host::GupsMode::Atomic;
    host::KernelResult result;
    if (!host::run_random_access(*sim, opts, result).ok()) {
      std::fprintf(stderr, "verification failed at %u ppm!\n", ppm);
      return 1;
    }
    char rate[16];
    std::snprintf(rate, sizeof(rate), "%.1f%%",
                  static_cast<double>(ppm) / 10'000.0);
    std::printf("%-12s %12llu %12llu %12llu %12.2f %10.2f\n", rate,
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(
                    sim::collect_stats(*sim).link_retries),
                static_cast<unsigned long long>(result.rqst_flits),
                result.bytes_per_cycle(), probe_latency(ppm));
  }
  std::puts("# every row's GUPS result verified against a host-side "
            "replay: retries cost cycles, never data.");
  return 0;
}
