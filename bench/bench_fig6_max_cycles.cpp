// bench_fig6_max_cycles.cpp — regenerates Figure 6: "Maximum Lock Cycles".
//
// Series: MAX_CYCLE vs thread count (2..100) for both devices. Expected
// shape: linear growth (~one lock handoff per thread), identical through
// ~50 threads, 4-link slightly worse beyond — the paper's worst cases are
// 392 cycles (4Link @ 99 threads) and 387 cycles (8Link @ 100 threads).
#include <cstdio>

#include "mutex_sweep.hpp"

int main() {
  std::puts("# Figure 6: Maximum Lock Cycles");
  std::puts("threads,max_4link4gb,max_8link8gb");
  const auto sweep = hmcsim::bench::run_sweep();
  std::uint64_t worst4 = 0;
  std::uint32_t worst4_at = 0;
  std::uint64_t worst8 = 0;
  std::uint32_t worst8_at = 0;
  for (const auto& p : sweep) {
    std::printf("%u,%llu,%llu\n", p.threads,
                static_cast<unsigned long long>(p.r4.max_cycles),
                static_cast<unsigned long long>(p.r8.max_cycles));
    if (p.r4.max_cycles > worst4) {
      worst4 = p.r4.max_cycles;
      worst4_at = p.threads;
    }
    if (p.r8.max_cycles > worst8) {
      worst8 = p.r8.max_cycles;
      worst8_at = p.threads;
    }
  }
  std::printf("# worst case: 4Link=%llu @ %u threads, 8Link=%llu @ %u "
              "threads (paper: 392 @ 99, 387 @ 100)\n",
              static_cast<unsigned long long>(worst4), worst4_at,
              static_cast<unsigned long long>(worst8), worst8_at);
  std::printf("# 8Link advantage at worst case: %.1f%% (paper: 1.2%%)\n",
              100.0 * (1.0 - static_cast<double>(worst8) /
                                 static_cast<double>(worst4)));
  return 0;
}
