// bench_fault_overhead.cpp — cost of the DRAM fault subsystem.
//
// Saturated read round-trips (every link busy every cycle) under three
// fault settings:
//
//   off        no fault mechanism configured — the pay-for-what-you-use
//              baseline; the vault read path must stay a null-pointer
//              compare per access (the ISSUE budget: <= 2% below the
//              seed's throughput)
//   transient  dram_fault_ppm=100 — realistic soft-error rate; every
//              64-bit word read rolls a deterministic injection draw and
//              runs the SEC-DED check
//   scrubbed   transient plus 64 stuck-at cells and a 256-cycle patrol
//              scrub interval — the full subsystem
//
// Rates are retired packets per second via items_processed. CI exports
// the report as BENCH_fault_overhead.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

enum class Mode { Off, Transient, Scrubbed };

void BM_SaturatedReads(benchmark::State& state, Mode mode) {
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  if (mode != Mode::Off) {
    cfg.dram_fault_ppm = 100;
    cfg.dram_fault_seed = 0xBE7C;
  }
  if (mode == Mode::Scrubbed) {
    cfg.stuck_faults = 64;
    cfg.scrub_interval = 256;
  }
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(cfg, sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  sim::Response rsp;
  std::int64_t retired = 0;
  for (auto _ : state) {
    for (std::uint32_t link = 0; link < 4; ++link) {
      rd.tag = tag++ & spec::kMaxTag;
      rd.addr = (static_cast<std::uint64_t>(rd.tag) * 64) % (1 << 20);
      (void)sim->send(rd, link);
    }
    sim->clock();
    for (std::uint32_t link = 0; link < 4; ++link) {
      while (sim->recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
        ++retired;
      }
    }
  }
  state.SetItemsProcessed(retired);
}

}  // namespace

BENCHMARK_CAPTURE(BM_SaturatedReads, off, Mode::Off);
BENCHMARK_CAPTURE(BM_SaturatedReads, transient, Mode::Transient);
BENCHMARK_CAPTURE(BM_SaturatedReads, scrubbed, Mode::Scrubbed);

BENCHMARK_MAIN();
