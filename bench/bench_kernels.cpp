// bench_kernels.cpp — workload-kernel shapes carried forward from the
// HMC-Sim 1.0 evaluation (stride-1 STREAM Triad vs RandomAccess), plus the
// PIM-vs-host GUPS comparison that motivates the Gen2 atomics.
#include <cstdio>
#include <memory>

#include "src/host/kernels/histogram.hpp"
#include "src/host/kernels/pointer_chase.hpp"
#include "src/host/kernels/random_access.hpp"
#include "src/host/kernels/stream_triad.hpp"
#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

std::unique_ptr<sim::Simulator> make_sim(const sim::Config& cfg) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(cfg, sim).ok()) {
    std::exit(1);
  }
  return sim;
}

void row(const char* device, const char* kernel, const char* variant,
         const host::KernelResult& r) {
  std::printf("%-10s %-14s %-12s %10llu %12llu %12llu %10.2f %10.4f\n",
              device, kernel, variant,
              static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(r.rqst_flits),
              static_cast<unsigned long long>(r.rsp_flits),
              r.bytes_per_cycle(), r.ops_per_cycle());
}

}  // namespace

int main() {
  std::puts("# Kernel evaluation (HMC-Sim 1.0 kernels on the 2.0 core)");
  std::printf("%-10s %-14s %-12s %10s %12s %12s %10s %10s\n", "device",
              "kernel", "variant", "cycles", "rqst_flits", "rsp_flits",
              "B/cycle", "ops/cycle");

  for (const auto& [cfg, name] :
       {std::pair{sim::Config::hmc_4link_4gb(), "4Link-4GB"},
        std::pair{sim::Config::hmc_8link_8gb(), "8Link-8GB"}}) {
    // Stride-1: STREAM Triad at the device's native block size.
    {
      auto sim = make_sim(cfg);
      host::StreamTriadOptions opts;
      opts.elements = 16384;
      opts.block_bytes = 64;
      opts.concurrency = 64;
      host::KernelResult r;
      if (!host::run_stream_triad(*sim, opts, r).ok()) {
        return 1;
      }
      row(name, "stream-triad", "stride-1", r);
    }
    // Random: GUPS both ways.
    for (const auto& [mode, variant] :
         {std::pair{host::GupsMode::ReadModifyWrite, "host-rmw"},
          std::pair{host::GupsMode::Atomic, "xor16-pim"}}) {
      auto sim = make_sim(cfg);
      host::RandomAccessOptions opts;
      opts.table_words = 1 << 18;
      opts.updates = 16384;
      opts.concurrency = 64;
      opts.mode = mode;
      host::KernelResult r;
      if (!host::run_random_access(*sim, opts, r).ok()) {
        return 1;
      }
      row(name, "randomaccess", variant, r);
    }
    // Histogram: the full atomic-class design space (Table I arithmetic:
    // 6 vs 2 vs 1 FLITs per update).
    for (const auto& [mode, variant] :
         {std::pair{host::HistogramMode::ReadModifyWrite, "host-rmw"},
          std::pair{host::HistogramMode::Atomic, "inc8"},
          std::pair{host::HistogramMode::PostedAtomic, "p_inc8"}}) {
      auto sim = make_sim(cfg);
      host::HistogramOptions opts;
      opts.updates = 16384;
      opts.buckets = 512;
      opts.concurrency = 64;
      opts.mode = mode;
      host::KernelResult r;
      if (!host::run_histogram(*sim, opts, r).ok()) {
        return 1;
      }
      row(name, "histogram", variant, r);
    }
    // Latency: dependent pointer chase.
    {
      auto sim = make_sim(cfg);
      host::PointerChaseOptions opts;
      opts.nodes = 1 << 14;
      opts.hops = 4096;
      opts.chains = 1;
      host::KernelResult r;
      if (!host::run_pointer_chase(*sim, opts, r).ok()) {
        return 1;
      }
      row(name, "pointer-chase", "1-chain", r);
    }
  }
  std::puts("# expected shapes: stride-1 bandwidth scales with links; "
            "xor16-pim halves GUPS traffic vs host-rmw; pointer chase is "
            "latency-bound (~3.5 cycles/hop) on both devices.");
  return 0;
}
