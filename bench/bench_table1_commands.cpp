// bench_table1_commands.cpp — regenerates Table I: "HMC-Sim 2.0 Gen2
// Additional Command Support", straight from the live command database,
// then benchmarks the packet codec across command classes with
// google-benchmark.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>

#include "src/common/rng.hpp"
#include "src/spec/commands.hpp"
#include "src/spec/crc32.hpp"
#include "src/spec/packet.hpp"

using namespace hmcsim;

namespace {

void print_table1() {
  std::puts("# Table I: HMC-Sim 2.0 Gen2 Additional Command Support");
  std::printf("%-12s %-14s %-14s %-15s\n", "Command Enum", "Command Code",
              "Request Flits", "Response Flits");
  const spec::Rqst rows[] = {
      // Gen2 additions, in the paper's table order.
      spec::Rqst::RD256,     spec::Rqst::WR256,    spec::Rqst::P_WR256,
      spec::Rqst::TWOADD8,   spec::Rqst::ADD16,    spec::Rqst::P_2ADD8,
      spec::Rqst::P_ADD16,   spec::Rqst::TWOADDS8R, spec::Rqst::ADDS16R,
      spec::Rqst::INC8,      spec::Rqst::P_INC8,   spec::Rqst::XOR16,
      spec::Rqst::OR16,      spec::Rqst::NOR16,    spec::Rqst::AND16,
      spec::Rqst::NAND16,    spec::Rqst::CASGT8,   spec::Rqst::CASGT16,
      spec::Rqst::CASLT8,    spec::Rqst::CASLT16,  spec::Rqst::CASEQ8,
      spec::Rqst::CASZERO16, spec::Rqst::EQ8,      spec::Rqst::EQ16,
      spec::Rqst::BWR,       spec::Rqst::P_BWR,    spec::Rqst::BWR8R,
      spec::Rqst::SWAP16,
  };
  for (const spec::Rqst rqst : rows) {
    const spec::CommandInfo& info = spec::command_info(rqst);
    std::printf("%-12s %-14u %-14u %-15u\n", std::string(info.name).c_str(),
                unsigned(info.cmd), unsigned(info.rqst_flits),
                unsigned(info.rsp_flits));
  }
  std::printf("# plus %zu CMC command codes available for custom "
              "operations (paper: 70)\n",
              spec::all_cmc_commands().size());
}

// ---- codec micro-benchmarks --------------------------------------------------

void BM_BuildRequest(benchmark::State& state, spec::Rqst rqst) {
  const spec::CommandInfo& info = spec::command_info(rqst);
  std::array<std::uint64_t, 32> payload{};
  Xoshiro256 rng(1);
  for (auto& w : payload) {
    w = rng();
  }
  spec::RqstParams params;
  params.rqst = rqst;
  params.addr = 0x12340;
  params.tag = 17;
  params.payload = {payload.data(), 2ULL * (info.rqst_flits - 1)};
  spec::RqstPacket pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::build_request(params, pkt));
    benchmark::DoNotOptimize(pkt);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          info.rqst_flits * 16);
}

void BM_ParseRequest(benchmark::State& state, spec::Rqst rqst) {
  const spec::CommandInfo& info = spec::command_info(rqst);
  std::array<std::uint64_t, 32> payload{};
  spec::RqstParams params;
  params.rqst = rqst;
  params.payload = {payload.data(), 2ULL * (info.rqst_flits - 1)};
  spec::RqstPacket pkt;
  if (!spec::build_request(params, pkt).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  std::array<std::uint64_t, spec::kMaxPacketWords> wire{};
  const std::size_t n = spec::serialize(pkt, wire);
  spec::RqstPacket parsed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::parse_request({wire.data(), n}, parsed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          info.rqst_flits * 16);
}

void BM_Crc32MaxPacket(benchmark::State& state) {
  std::array<std::uint64_t, spec::kMaxPacketWords> words{};
  Xoshiro256 rng(2);
  for (auto& w : words) {
    w = rng();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::crc32k_words(words));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words.size() * 8));
}

}  // namespace

BENCHMARK_CAPTURE(BM_BuildRequest, RD16, spec::Rqst::RD16);
BENCHMARK_CAPTURE(BM_BuildRequest, WR64, spec::Rqst::WR64);
BENCHMARK_CAPTURE(BM_BuildRequest, WR256, spec::Rqst::WR256);
BENCHMARK_CAPTURE(BM_BuildRequest, INC8, spec::Rqst::INC8);
BENCHMARK_CAPTURE(BM_BuildRequest, CASGT16, spec::Rqst::CASGT16);
BENCHMARK_CAPTURE(BM_ParseRequest, RD16, spec::Rqst::RD16);
BENCHMARK_CAPTURE(BM_ParseRequest, WR256, spec::Rqst::WR256);
BENCHMARK(BM_Crc32MaxPacket);

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
