// bench_parallel_scaling.cpp — sharded parallel clock scaling.
//
// Drives a saturated chain of 1/2/4/8 cubes under every worker-pool
// size in {1, 2, 4, 8} and reports throughput as packets (responses)
// per second; simulated cycles per second rides along as a counter.
// Speedup at N threads is the rate ratio against the threads=1 row of
// the same cube count — one JSON report carries its own baseline
// (published as BENCH_parallel_scaling.json in CI). The engine caps the
// pool at one worker per cube; the `threads_effective` counter records
// the cap so redundant rows are self-describing. Simulation output is
// byte-identical across every row by construction (the golden
// equivalence suite proves it) — this harness measures only the wall
// clock.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

/// Closed-loop saturated traffic: every host link offers a read every
/// cycle, targets striped over every cube in the chain, responses
/// drained as they surface. Deep enough queues everywhere that all
/// cubes stay busy — the regime where sharding has work to overlap.
void BM_SaturatedChain(benchmark::State& state) {
  constexpr std::uint64_t kSpanCycles = 128;
  const auto devs = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));

  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.num_devs = devs;
  cfg.topology = sim::Topology::Chain;
  cfg.threads = threads;
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(cfg, sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  sim::Response rsp;
  std::int64_t responses = 0;
  std::int64_t cycles = 0;
  for (auto _ : state) {
    for (std::uint64_t c = 0; c < kSpanCycles; ++c) {
      for (std::uint32_t link = 0; link < cfg.num_links; ++link) {
        rd.tag = tag++ & spec::kMaxTag;
        rd.cub = static_cast<std::uint8_t>(rd.tag % devs);
        rd.addr = (static_cast<std::uint64_t>(rd.tag) * 64) % (1 << 20);
        (void)sim->send(rd, link);  // Stall == the link is already full.
      }
      sim->clock();
      for (std::uint32_t link = 0; link < cfg.num_links; ++link) {
        while (sim->recv(link, rsp).ok()) {
          ++responses;
        }
      }
    }
    cycles += static_cast<std::int64_t>(kSpanCycles);
  }
  // items_processed -> packets per second, the headline scaling number.
  state.SetItemsProcessed(responses);
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["threads_effective"] =
      static_cast<double>(sim->effective_threads());
}

}  // namespace

BENCHMARK(BM_SaturatedChain)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 2, 4, 8}})
    ->ArgNames({"cubes", "threads"});

BENCHMARK_MAIN();
