// bench_cmc_guard.cpp — cost of the CMC fault-containment guard.
//
// The guard wraps every plugin execute call in a try/catch, pre-fills the
// response-payload canary, polices the memory trampolines against a word
// budget, and scans the canary afterwards. These benchmarks price that
// machinery three ways:
//   RawPluginCall    — the plugin function pointer alone (the pre-guard
//                      cost floor for a registered execute call)
//   GuardedExecute   — CmcRegistry::execute with the full guard engaged
//   GuardedLoadedSim — a simulator driving a well-behaved CMC op through
//                      the whole packet path (the end-to-end loaded
//                      number the <=2% regression budget applies to)
// CI records the JSON output as BENCH_cmc_guard.json.
#include <benchmark/benchmark.h>

#include <memory>

#include "plugins/builtin.h"
#include "src/core/cmc_registry.hpp"
#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

std::uint64_t g_mem[64];

Status bench_mem_read(void*, std::uint32_t, std::uint64_t addr,
                      std::uint64_t* data, std::uint32_t nwords) {
  for (std::uint32_t i = 0; i < nwords; ++i) {
    data[i] = g_mem[(addr / 8 + i) % 64];
  }
  return Status::Ok();
}

Status bench_mem_write(void*, std::uint32_t, std::uint64_t addr,
                       const std::uint64_t* data, std::uint32_t nwords) {
  for (std::uint32_t i = 0; i < nwords; ++i) {
    g_mem[(addr / 8 + i) % 64] = data[i];
  }
  return Status::Ok();
}

/// The raw plugin call: satinc's execute function through its pointer,
/// with the services wired but no registry guard around it.
void BM_CmcRawPluginCall(benchmark::State& state) {
  cmc::CmcContext ctx;
  ctx.mem_read = bench_mem_read;
  ctx.mem_write = bench_mem_write;
  cmc::CmcExecResult result;
  ctx.current = &result;  // set_af needs an in-flight record.
  std::uint64_t rqst_payload[2] = {0, 0};
  for (auto _ : state) {
    const int rc = hmcsim_builtin_satinc_execute(
        &ctx, 0, 0, 0, 0, 0x100, 1, 0, 0, rqst_payload,
        result.rsp_payload.data());
    benchmark::DoNotOptimize(rc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmcRawPluginCall);

/// The same call through CmcRegistry::execute with the guard engaged.
void BM_CmcGuardedExecute(benchmark::State& state) {
  cmc::CmcRegistry registry;
  if (!registry
           .register_op(hmcsim_builtin_satinc_register,
                        hmcsim_builtin_satinc_execute,
                        hmcsim_builtin_satinc_str)
           .ok()) {
    state.SkipWithError("register failed");
    return;
  }
  cmc::CmcContext ctx;
  ctx.mem_read = bench_mem_read;
  ctx.mem_write = bench_mem_write;
  cmc::CmcExecResult result;
  std::uint64_t rqst_payload[2] = {0, 0};
  for (auto _ : state) {
    const Status s = registry.execute(21, ctx, 0, 0, 0, 0, 0x100, 1, 0, 0,
                                      {rqst_payload, 2}, result);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmcGuardedExecute);

/// End-to-end: a stream of satinc requests through the full packet path.
/// This is the loaded-path number the guard must not regress by >2%.
void BM_CmcGuardedLoadedSim(benchmark::State& state) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  if (!sim->register_cmc(hmcsim_builtin_satinc_register,
                         hmcsim_builtin_satinc_execute,
                         hmcsim_builtin_satinc_str)
           .ok()) {
    state.SkipWithError("register failed");
    return;
  }
  spec::RqstParams params;
  params.rqst = spec::Rqst::CMC21;
  std::uint16_t tag = 0;
  for (auto _ : state) {
    params.tag = tag++ & spec::kMaxTag;
    params.addr = (static_cast<std::uint64_t>(tag) * 64) % (1 << 20);
    (void)sim->send(params, tag % 4);
    sim->clock();
    sim::Response rsp;
    for (std::uint32_t link = 0; link < 4; ++link) {
      while (sim->recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CmcGuardedLoadedSim);

}  // namespace

BENCHMARK_MAIN();
