// bench_table6_summary.cpp — regenerates Table VI: "CMC Mutex Operations"
// summary (min / max / avg cycle counts over the 2..100-thread sweep).
//
// Paper values:   Device      Min   Max   Avg
//                 4Link-4GB     6   392   226.48
//                 8Link-8GB     6   387   221.48
//
// Our substrate reproduces the *shape* (min exactly 6; max/avg linear in
// thread count; 8-link no worse than 4-link, with a small edge past ~50
// threads); absolute max/avg differ because vault service time is not
// published and our handoff costs ~3 cycles vs the paper's ~4.
#include <algorithm>
#include <cstdio>

#include "mutex_sweep.hpp"

int main() {
  const auto sweep = hmcsim::bench::run_sweep();

  struct Summary {
    std::uint64_t min = ~0ULL;
    std::uint64_t max = 0;
    double max_avg = 0;
  };
  Summary s4;
  Summary s8;
  for (const auto& p : sweep) {
    s4.min = std::min(s4.min, p.r4.min_cycles);
    s4.max = std::max(s4.max, p.r4.max_cycles);
    s4.max_avg = std::max(s4.max_avg, p.r4.avg_cycles);
    s8.min = std::min(s8.min, p.r8.min_cycles);
    s8.max = std::max(s8.max, p.r8.max_cycles);
    s8.max_avg = std::max(s8.max_avg, p.r8.avg_cycles);
  }

  std::puts("# Table VI: CMC Mutex Operations (sweep summary, 2..100 "
            "threads)");
  std::printf("%-12s %-16s %-16s %-16s\n", "Device", "Min Cycle Count",
              "Max Cycle Count", "Avg Cycle Count");
  std::printf("%-12s %-16llu %-16llu %-16.2f\n", "4Link-4GB",
              static_cast<unsigned long long>(s4.min),
              static_cast<unsigned long long>(s4.max), s4.max_avg);
  std::printf("%-12s %-16llu %-16llu %-16.2f\n", "8Link-8GB",
              static_cast<unsigned long long>(s8.min),
              static_cast<unsigned long long>(s8.max), s8.max_avg);
  std::puts("#");
  std::puts("# paper:     4Link-4GB    6    392    226.48");
  std::puts("# paper:     8Link-8GB    6    387    221.48");

  // Shape checks (reported, and enforced via exit code so regressions in
  // the queueing model are caught when the bench suite runs).
  bool ok = true;
  auto check = [&](bool cond, const char* what) {
    std::printf("# shape %-52s %s\n", what, cond ? "OK" : "VIOLATED");
    ok = ok && cond;
  };
  check(s4.min == 6 && s8.min == 6, "min cycle count is exactly 6");
  check(s8.max <= s4.max, "8-link worst max <= 4-link worst max");
  check(s8.max_avg <= s4.max_avg, "8-link worst avg <= 4-link worst avg");
  bool identical_low = true;
  for (const auto& p : sweep) {
    if (p.threads <= 50 && (p.r4.max_cycles != p.r8.max_cycles ||
                            p.r4.avg_cycles != p.r8.avg_cycles)) {
      identical_low = false;
    }
  }
  check(identical_low, "4-link and 8-link identical through 50 threads");
  bool diverged_high = false;
  for (const auto& p : sweep) {
    if (p.threads > 50 && (p.r4.avg_cycles != p.r8.avg_cycles)) {
      diverged_high = true;
    }
  }
  check(diverged_high, "perturbations appear beyond 50 threads");
  return ok ? 0 : 1;
}
