// bench_table2_amo_efficiency.cpp — regenerates Table II: "HMC Gen2 Atomic
// Memory Operation Efficiency".
//
// Prints the analytic FLIT/byte accounting exactly as the paper states it,
// then validates it by *measuring* the same two request patterns through
// the simulator's link counters, and finally reports the efficiency of
// every Gen2 atomic against its cache-based equivalent.
#include <cstdio>
#include <memory>

#include "src/host/cache_amo_model.hpp"

using namespace hmcsim;

int main() {
  std::puts("# Table II: HMC Gen2 Atomic Memory Operation Efficiency");
  std::printf("%-12s %-34s %-28s %-12s\n", "AMO Type", "Request Structure",
              "128 Byte FLITS Required", "Total Bytes");

  const host::AmoCost cache = host::cache_amo_cost(64);
  std::printf("%-12s %-34s (1FLIT + %lluFLITS) + (%lluFLITS + 1FLIT) %-6s "
              "%llu\n",
              "Cache-Based", "Read 64 Bytes + Write 64 Bytes",
              static_cast<unsigned long long>(cache.response_flits - 1),
              static_cast<unsigned long long>(cache.request_flits - 1), "",
              static_cast<unsigned long long>(cache.total_bytes()));
  const host::AmoCost inc8 = host::hmc_amo_cost(spec::Rqst::INC8);
  std::printf("%-12s %-34s 1FLIT + 1FLIT %-14s %llu\n", "HMC-Based",
              "INC8 Command", "",
              static_cast<unsigned long long>(inc8.total_bytes()));
  std::printf("# paper: 1536 vs 256 bytes (6x)\n\n");

  // ---- measured validation -------------------------------------------------
  std::puts("# measured through the pipeline (1000 atomic increments):");
  {
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
      return 1;
    }
    host::MeasuredAmoTraffic cache_measured;
    if (!host::measure_cache_amo(*sim, 1000, 64, cache_measured).ok()) {
      return 1;
    }
    std::unique_ptr<sim::Simulator> sim2;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim2).ok()) {
      return 1;
    }
    host::MeasuredAmoTraffic hmc_measured;
    if (!host::measure_hmc_amo(*sim2, 1000, hmc_measured).ok()) {
      return 1;
    }
    std::printf("%-12s rqst_flits=%-8llu rsp_flits=%-8llu cycles=%llu\n",
                "Cache-Based",
                static_cast<unsigned long long>(cache_measured.rqst_flits),
                static_cast<unsigned long long>(cache_measured.rsp_flits),
                static_cast<unsigned long long>(cache_measured.cycles));
    std::printf("%-12s rqst_flits=%-8llu rsp_flits=%-8llu cycles=%llu\n",
                "HMC-Based",
                static_cast<unsigned long long>(hmc_measured.rqst_flits),
                static_cast<unsigned long long>(hmc_measured.rsp_flits),
                static_cast<unsigned long long>(hmc_measured.cycles));
    const double ratio =
        static_cast<double>(cache_measured.rqst_flits +
                            cache_measured.rsp_flits) /
        static_cast<double>(hmc_measured.rqst_flits +
                            hmc_measured.rsp_flits);
    std::printf("# measured traffic ratio: %.1fx (analytic: %.1fx)\n\n",
                ratio,
                static_cast<double>(cache.total_flits()) /
                    static_cast<double>(inc8.total_flits()));
  }

  // ---- every Gen2 atomic vs its cache-based equivalent ----------------------
  std::puts("# extension: FLIT cost of every Gen2 atomic vs 64B cache RMW "
            "(12 FLITs):");
  std::printf("%-10s %-8s %-8s %-8s %-10s\n", "atomic", "rqst", "rsp",
              "total", "advantage");
  for (const auto& info : spec::all_commands()) {
    if (info.kind != spec::CommandKind::Atomic &&
        info.kind != spec::CommandKind::PostedAtomic) {
      continue;
    }
    const host::AmoCost cost = host::hmc_amo_cost(info.rqst);
    std::printf("%-10s %-8llu %-8llu %-8llu %.1fx\n",
                std::string(info.name).c_str(),
                static_cast<unsigned long long>(cost.request_flits),
                static_cast<unsigned long long>(cost.response_flits),
                static_cast<unsigned long long>(cost.total_flits()),
                12.0 / static_cast<double>(cost.total_flits()));
  }
  return 0;
}
