// bench_telemetry_overhead.cpp — cost of live telemetry on the hot path.
//
// Saturated round-trip traffic (every link busy every cycle) under three
// telemetry settings:
//
//   off      no sampler, no profiler — the pay-for-what-you-use
//            baseline; the ISSUE budget is < 1% below this arm for a
//            build where telemetry merely exists
//   sampler  a 64-window Sampler snapshotting the full default column
//            set every 256 cycles through the periodic-hook machinery
//            (the --sample-every 256 configuration)
//   prof     sampler plus the engine self-profiler (the --prof
//            configuration; adds two steady_clock reads per span)
//
// Rates are retired packets per second via items_processed. CI exports
// the report as BENCH_telemetry_overhead.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "src/metrics/sampler.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/stats_report.hpp"

using namespace hmcsim;

namespace {

enum class Mode { Off, Sampler, Prof };

void BM_SaturatedTraffic(benchmark::State& state, Mode mode) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  std::unique_ptr<metrics::Sampler> sampler;
  if (mode != Mode::Off) {
    metrics::SamplerOptions sopts;
    sopts.every = 256;
    sopts.capacity = 64;
    sampler = std::make_unique<metrics::Sampler>(sim->metrics(), sopts);
    sim::register_default_samples(*sampler, *sim);
    metrics::Sampler* raw = sampler.get();
    sim->add_periodic_hook(sopts.every, [raw](sim::Simulator& s) {
      raw->sample(s.cycle());
    });
  }
  if (mode == Mode::Prof) {
    if (!sim->enable_profiling().ok()) {
      state.SkipWithError("enable_profiling failed");
      return;
    }
  }

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  sim::Response rsp;
  std::int64_t retired = 0;
  for (auto _ : state) {
    for (std::uint32_t link = 0; link < 4; ++link) {
      rd.tag = tag++ & spec::kMaxTag;
      rd.addr = (static_cast<std::uint64_t>(rd.tag) * 64) % (1 << 20);
      (void)sim->send(rd, link);
    }
    sim->clock();
    for (std::uint32_t link = 0; link < 4; ++link) {
      while (sim->recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
        ++retired;
      }
    }
  }
  state.SetItemsProcessed(retired);
}

}  // namespace

BENCHMARK_CAPTURE(BM_SaturatedTraffic, off, Mode::Off);
BENCHMARK_CAPTURE(BM_SaturatedTraffic, sampler, Mode::Sampler);
BENCHMARK_CAPTURE(BM_SaturatedTraffic, prof, Mode::Prof);

BENCHMARK_MAIN();
