// bench_micro_core.cpp — core simulator micro-benchmarks: simulation clock
// rate, AMO execution, CMC dispatch, backing-store access.
#include <benchmark/benchmark.h>

#include <array>
#include <memory>

#include "mutex_sweep.hpp"
#include "src/amo/amo_unit.hpp"
#include "src/mem/backing_store.hpp"

using namespace hmcsim;

namespace {

/// Idle clock rate: how many device cycles per wall second the simulator
/// sustains with empty queues (the cost floor of hmcsim_clock()).
void BM_ClockIdle(benchmark::State& state) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  for (auto _ : state) {
    sim->clock();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Loaded clock rate: a stream of reads saturating one vault.
void BM_ClockLoaded(benchmark::State& state) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD64;
  std::uint16_t tag = 0;
  for (auto _ : state) {
    rd.tag = tag++ & spec::kMaxTag;
    rd.addr = (static_cast<std::uint64_t>(tag) * 64) % (1 << 20);
    (void)sim->send(rd, tag % 4);
    sim->clock();
    sim::Response rsp;
    for (std::uint32_t link = 0; link < 4; ++link) {
      while (sim->recv(link, rsp).ok()) {
        benchmark::DoNotOptimize(rsp);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_AmoExecute(benchmark::State& state, spec::Rqst op) {
  mem::BackingStore store(1 << 20);
  const std::array<std::uint64_t, 2> payload{3, 5};
  amo::AmoResult result;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        amo::execute(op, store, 0x100, payload, result));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CmcExecuteDispatch(benchmark::State& state) {
  std::unique_ptr<sim::Simulator> sim;
  if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
    state.SkipWithError("create failed");
    return;
  }
  bench::register_mutex_ops(*sim);
  // Drive lock/unlock pairs through the full pipeline.
  const std::array<std::uint64_t, 2> tid{1, 0};
  spec::RqstParams lock;
  lock.rqst = spec::Rqst::CMC125;
  lock.addr = 0x4000;
  lock.payload = tid;
  spec::RqstParams unlock = lock;
  unlock.rqst = spec::Rqst::CMC127;
  sim::Response rsp;
  for (auto _ : state) {
    (void)sim->send(lock, 0);
    while (!sim->rsp_ready(0)) {
      sim->clock();
    }
    (void)sim->recv(0, rsp);
    (void)sim->send(unlock, 0);
    while (!sim->rsp_ready(0)) {
      sim->clock();
    }
    (void)sim->recv(0, rsp);
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}

void BM_BackingStoreWrite(benchmark::State& state) {
  mem::BackingStore store(1ULL << 30);
  std::array<std::uint8_t, 256> buf{};
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.write(addr, buf));
    addr = (addr + 4096) % (1ULL << 24);  // Touch many pages.
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}

void BM_BackingStoreRead(benchmark::State& state) {
  mem::BackingStore store(1ULL << 30);
  std::array<std::uint8_t, 256> buf{};
  for (std::uint64_t a = 0; a < (1ULL << 24); a += 4096) {
    (void)store.write(a, buf);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.read(addr, buf));
    addr = (addr + 4096) % (1ULL << 24);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}

}  // namespace

BENCHMARK(BM_ClockIdle);
BENCHMARK(BM_ClockLoaded);
BENCHMARK_CAPTURE(BM_AmoExecute, INC8, spec::Rqst::INC8);
BENCHMARK_CAPTURE(BM_AmoExecute, ADD16, spec::Rqst::ADD16);
BENCHMARK_CAPTURE(BM_AmoExecute, CASGT16, spec::Rqst::CASGT16);
BENCHMARK_CAPTURE(BM_AmoExecute, SWAP16, spec::Rqst::SWAP16);
BENCHMARK(BM_CmcExecuteDispatch);
BENCHMARK(BM_BackingStoreWrite);
BENCHMARK(BM_BackingStoreRead);

BENCHMARK_MAIN();
