// hmc_rogue_throw.cpp — CMC71: a C++ plugin that throws an exception
// straight through the C ABI from its execute function. Exists purely to
// prove the registry's execute guard converts the escape into an ordinary
// CMC failure instead of terminating the simulator.
#include <cstring>
#include <stdexcept>

#include "core/cmc_api.h"

extern "C" {

HMCSIM_CMC_DEFINE_ABI_VERSION()

int hmcsim_register_cmc(hmc_rqst_t *r, uint32_t *c, uint32_t *rq_len,
                        uint32_t *rs_len, hmc_response_t *rs_cmd,
                        uint8_t *rs_code) {
  *r = HMC_CMC71;
  *c = 71;
  *rq_len = 2;
  *rs_len = 2;
  *rs_cmd = HMC_RD_RS;
  *rs_code = 0;
  return 0;
}

int hmcsim_execute_cmc(void *hmc, uint32_t dev, uint32_t quad, uint32_t vault,
                       uint32_t bank, uint64_t addr, uint32_t length,
                       uint64_t head, uint64_t tail, uint64_t *rqst_payload,
                       uint64_t *rsp_payload) {
  (void)hmc;
  (void)dev;
  (void)quad;
  (void)vault;
  (void)bank;
  (void)addr;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  (void)rsp_payload;
  throw std::runtime_error("hmc_rogue_throw: escaping the C ABI");
}

void hmcsim_cmc_str(char *out) {
  std::strncpy(out, "hmc_rogue_throw", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

}  // extern "C"
