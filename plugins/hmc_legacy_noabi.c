/* hmc_legacy_noabi.c — CMC73: loader-handshake fixture. A valid plugin
 * that exports only the three classic symbols and no
 * hmcsim_cmc_abi_version; it must still load (the handshake symbol is
 * optional for backward compatibility) with a deprecation warning. */
#include <string.h>

#include "core/cmc_api.h"

int hmcsim_register_cmc(hmc_rqst_t *r, uint32_t *c, uint32_t *rq_len,
                        uint32_t *rs_len, hmc_response_t *rs_cmd,
                        uint8_t *rs_code) {
  *r = HMC_CMC73;
  *c = 73;
  *rq_len = 1;
  *rs_len = 1;
  *rs_cmd = HMC_WR_RS;
  *rs_code = 0;
  return 0;
}

int hmcsim_execute_cmc(void *hmc, uint32_t dev, uint32_t quad, uint32_t vault,
                       uint32_t bank, uint64_t addr, uint32_t length,
                       uint64_t head, uint64_t tail, uint64_t *rqst_payload,
                       uint64_t *rsp_payload) {
  (void)hmc;
  (void)dev;
  (void)quad;
  (void)vault;
  (void)bank;
  (void)addr;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  (void)rsp_payload;
  return 0;
}

void hmcsim_cmc_str(char *out) {
  strncpy(out, "hmc_legacy_noabi", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}
