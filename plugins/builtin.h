/* builtin.h — statically registerable CMC operations.
 *
 * The same operation implementations that back the shared-library plugins,
 * exported under prefixed names so several of them can be linked into one
 * binary and registered through Simulator::register_cmc() without touching
 * the dynamic loader. Benches and tests use this path; dedicated tests
 * exercise the dlopen path against the real .so files.
 */
#ifndef HMCSIM_PLUGINS_BUILTIN_H
#define HMCSIM_PLUGINS_BUILTIN_H

#include "core/cmc_api.h"

#ifdef __cplusplus
extern "C" {
#endif

#define HMCSIM_BUILTIN_DECL(op)                                           \
  int hmcsim_builtin_##op##_register(hmc_rqst_t *rqst, uint32_t *cmd,     \
                                     uint32_t *rqst_len,                  \
                                     uint32_t *rsp_len,                   \
                                     hmc_response_t *rsp_cmd,             \
                                     uint8_t *rsp_cmd_code);              \
  int hmcsim_builtin_##op##_execute(void *hmc, uint32_t dev,              \
                                    uint32_t quad, uint32_t vault,        \
                                    uint32_t bank, uint64_t addr,         \
                                    uint32_t length, uint64_t head,       \
                                    uint64_t tail, uint64_t *rqst_payload,\
                                    uint64_t *rsp_payload);               \
  void hmcsim_builtin_##op##_str(char *out)

HMCSIM_BUILTIN_DECL(lock);     /* CMC125 */
HMCSIM_BUILTIN_DECL(trylock);  /* CMC126 */
HMCSIM_BUILTIN_DECL(unlock);   /* CMC127 */
HMCSIM_BUILTIN_DECL(popcnt);   /* CMC32  */
HMCSIM_BUILTIN_DECL(fadd_f64); /* CMC56  */
HMCSIM_BUILTIN_DECL(fetchmax); /* CMC60  */
HMCSIM_BUILTIN_DECL(bloomset); /* CMC90  */
HMCSIM_BUILTIN_DECL(zero16);   /* CMC120 (posted) */
HMCSIM_BUILTIN_DECL(satinc);   /* CMC21  */
HMCSIM_BUILTIN_DECL(memfill);  /* CMC110 (posted) */

#undef HMCSIM_BUILTIN_DECL

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HMCSIM_PLUGINS_BUILTIN_H */
