/* hmc_popcnt.c — CMC32: 128-bit population count (example CMC operation). */
#include "extras_common.h"

/* ABI handshake: report the header version this plugin was built against. */
HMCSIM_CMC_DEFINE_ABI_VERSION()

int hmcsim_register_cmc(hmc_rqst_t *r, uint32_t *c, uint32_t *rq_len,
                        uint32_t *rs_len, hmc_response_t *rs_cmd,
                        uint8_t *rs_code) {
  return hmc_popcnt_register_impl(r, c, rq_len, rs_len, rs_cmd, rs_code);
}

int hmcsim_execute_cmc(void *hmc, uint32_t dev, uint32_t quad, uint32_t vault,
                       uint32_t bank, uint64_t addr, uint32_t length,
                       uint64_t head, uint64_t tail, uint64_t *rqst_payload,
                       uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  return hmc_popcnt_execute_impl(hmc, dev, addr, rsp_payload);
}

void hmcsim_cmc_str(char *out) { hmc_popcnt_str_impl(out); }
