/* hmc_zero16.c — CMC120: posted 16-byte block clear.
 * Demonstrates a posted CMC operation (no response packet). */
#include "extras_common.h"

/* ABI handshake: report the header version this plugin was built against. */
HMCSIM_CMC_DEFINE_ABI_VERSION()

int hmcsim_register_cmc(hmc_rqst_t *r, uint32_t *c, uint32_t *rq_len,
                        uint32_t *rs_len, hmc_response_t *rs_cmd,
                        uint8_t *rs_code) {
  return hmc_zero16_register_impl(r, c, rq_len, rs_len, rs_cmd, rs_code);
}

int hmcsim_execute_cmc(void *hmc, uint32_t dev, uint32_t quad, uint32_t vault,
                       uint32_t bank, uint64_t addr, uint32_t length,
                       uint64_t head, uint64_t tail, uint64_t *rqst_payload,
                       uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  (void)rsp_payload;
  return hmc_zero16_execute_impl(hmc, dev, addr);
}

void hmcsim_cmc_str(char *out) { hmc_zero16_str_impl(out); }
