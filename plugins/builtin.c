/* builtin.c — static-registration wrappers over the shared op logic. */
#include "builtin.h"

#include "extras_common.h"
#include "mutex_common.h"

/* ---- mutex trio ---------------------------------------------------------- */

int hmcsim_builtin_lock_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                 uint32_t *rs, hmc_response_t *rc,
                                 uint8_t *code) {
  return hmc_lock_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_lock_execute(void *hmc, uint32_t dev, uint32_t quad,
                                uint32_t vault, uint32_t bank, uint64_t addr,
                                uint32_t length, uint64_t head, uint64_t tail,
                                uint64_t *rqst_payload,
                                uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  return hmc_lock_execute_impl(hmc, dev, addr, rqst_payload, rsp_payload);
}
void hmcsim_builtin_lock_str(char *out) { hmc_lock_str_impl(out); }

int hmcsim_builtin_trylock_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                    uint32_t *rs, hmc_response_t *rc,
                                    uint8_t *code) {
  return hmc_trylock_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_trylock_execute(void *hmc, uint32_t dev, uint32_t quad,
                                   uint32_t vault, uint32_t bank,
                                   uint64_t addr, uint32_t length,
                                   uint64_t head, uint64_t tail,
                                   uint64_t *rqst_payload,
                                   uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  return hmc_trylock_execute_impl(hmc, dev, addr, rqst_payload, rsp_payload);
}
void hmcsim_builtin_trylock_str(char *out) { hmc_trylock_str_impl(out); }

int hmcsim_builtin_unlock_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                   uint32_t *rs, hmc_response_t *rc,
                                   uint8_t *code) {
  return hmc_unlock_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_unlock_execute(void *hmc, uint32_t dev, uint32_t quad,
                                  uint32_t vault, uint32_t bank,
                                  uint64_t addr, uint32_t length,
                                  uint64_t head, uint64_t tail,
                                  uint64_t *rqst_payload,
                                  uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  return hmc_unlock_execute_impl(hmc, dev, addr, rqst_payload, rsp_payload);
}
void hmcsim_builtin_unlock_str(char *out) { hmc_unlock_str_impl(out); }

/* ---- extras ----------------------------------------------------------------- */

int hmcsim_builtin_popcnt_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                   uint32_t *rs, hmc_response_t *rc,
                                   uint8_t *code) {
  return hmc_popcnt_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_popcnt_execute(void *hmc, uint32_t dev, uint32_t quad,
                                  uint32_t vault, uint32_t bank,
                                  uint64_t addr, uint32_t length,
                                  uint64_t head, uint64_t tail,
                                  uint64_t *rqst_payload,
                                  uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  return hmc_popcnt_execute_impl(hmc, dev, addr, rsp_payload);
}
void hmcsim_builtin_popcnt_str(char *out) { hmc_popcnt_str_impl(out); }

int hmcsim_builtin_fadd_f64_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                     uint32_t *rs, hmc_response_t *rc,
                                     uint8_t *code) {
  return hmc_fadd_f64_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_fadd_f64_execute(void *hmc, uint32_t dev, uint32_t quad,
                                    uint32_t vault, uint32_t bank,
                                    uint64_t addr, uint32_t length,
                                    uint64_t head, uint64_t tail,
                                    uint64_t *rqst_payload,
                                    uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  return hmc_fadd_f64_execute_impl(hmc, dev, addr, rqst_payload,
                                   rsp_payload);
}
void hmcsim_builtin_fadd_f64_str(char *out) { hmc_fadd_f64_str_impl(out); }

int hmcsim_builtin_fetchmax_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                     uint32_t *rs, hmc_response_t *rc,
                                     uint8_t *code) {
  return hmc_fetchmax_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_fetchmax_execute(void *hmc, uint32_t dev, uint32_t quad,
                                    uint32_t vault, uint32_t bank,
                                    uint64_t addr, uint32_t length,
                                    uint64_t head, uint64_t tail,
                                    uint64_t *rqst_payload,
                                    uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  return hmc_fetchmax_execute_impl(hmc, dev, addr, rqst_payload,
                                   rsp_payload);
}
void hmcsim_builtin_fetchmax_str(char *out) { hmc_fetchmax_str_impl(out); }

int hmcsim_builtin_bloomset_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                     uint32_t *rs, hmc_response_t *rc,
                                     uint8_t *code) {
  return hmc_bloomset_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_bloomset_execute(void *hmc, uint32_t dev, uint32_t quad,
                                    uint32_t vault, uint32_t bank,
                                    uint64_t addr, uint32_t length,
                                    uint64_t head, uint64_t tail,
                                    uint64_t *rqst_payload,
                                    uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  return hmc_bloomset_execute_impl(hmc, dev, addr, rqst_payload,
                                   rsp_payload);
}
void hmcsim_builtin_bloomset_str(char *out) { hmc_bloomset_str_impl(out); }

int hmcsim_builtin_satinc_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                   uint32_t *rs, hmc_response_t *rc,
                                   uint8_t *code) {
  return hmc_satinc_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_satinc_execute(void *hmc, uint32_t dev, uint32_t quad,
                                  uint32_t vault, uint32_t bank,
                                  uint64_t addr, uint32_t length,
                                  uint64_t head, uint64_t tail,
                                  uint64_t *rqst_payload,
                                  uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  return hmc_satinc_execute_impl(hmc, dev, addr, rsp_payload);
}
void hmcsim_builtin_satinc_str(char *out) { hmc_satinc_str_impl(out); }

int hmcsim_builtin_memfill_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                    uint32_t *rs, hmc_response_t *rc,
                                    uint8_t *code) {
  return hmc_memfill_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_memfill_execute(void *hmc, uint32_t dev, uint32_t quad,
                                   uint32_t vault, uint32_t bank,
                                   uint64_t addr, uint32_t length,
                                   uint64_t head, uint64_t tail,
                                   uint64_t *rqst_payload,
                                   uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  (void)rsp_payload;
  return hmc_memfill_execute_impl(hmc, dev, addr, rqst_payload);
}
void hmcsim_builtin_memfill_str(char *out) { hmc_memfill_str_impl(out); }

int hmcsim_builtin_zero16_register(hmc_rqst_t *r, uint32_t *c, uint32_t *rq,
                                   uint32_t *rs, hmc_response_t *rc,
                                   uint8_t *code) {
  return hmc_zero16_register_impl(r, c, rq, rs, rc, code);
}
int hmcsim_builtin_zero16_execute(void *hmc, uint32_t dev, uint32_t quad,
                                  uint32_t vault, uint32_t bank,
                                  uint64_t addr, uint32_t length,
                                  uint64_t head, uint64_t tail,
                                  uint64_t *rqst_payload,
                                  uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  (void)rsp_payload;
  return hmc_zero16_execute_impl(hmc, dev, addr);
}
void hmcsim_builtin_zero16_str(char *out) { hmc_zero16_str_impl(out); }
