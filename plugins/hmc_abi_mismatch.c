/* hmc_abi_mismatch.c — CMC72: loader-handshake fixture. A structurally
 * valid plugin whose exported ABI version deliberately disagrees with the
 * simulator's HMCSIM_CMC_ABI_VERSION; CmcLoader::load must reject it with
 * a LoadError before running its registration. */
#include <string.h>

#include "core/cmc_api.h"

uint32_t hmcsim_cmc_abi_version(void) { return HMCSIM_CMC_ABI_VERSION + 1; }

int hmcsim_register_cmc(hmc_rqst_t *r, uint32_t *c, uint32_t *rq_len,
                        uint32_t *rs_len, hmc_response_t *rs_cmd,
                        uint8_t *rs_code) {
  *r = HMC_CMC72;
  *c = 72;
  *rq_len = 1;
  *rs_len = 1;
  *rs_cmd = HMC_WR_RS;
  *rs_code = 0;
  return 0;
}

int hmcsim_execute_cmc(void *hmc, uint32_t dev, uint32_t quad, uint32_t vault,
                       uint32_t bank, uint64_t addr, uint32_t length,
                       uint64_t head, uint64_t tail, uint64_t *rqst_payload,
                       uint64_t *rsp_payload) {
  (void)hmc;
  (void)dev;
  (void)quad;
  (void)vault;
  (void)bank;
  (void)addr;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  (void)rsp_payload;
  return 0;
}

void hmcsim_cmc_str(char *out) {
  strncpy(out, "hmc_abi_mismatch", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}
