/* hmc_lock.c — CMC125: atomic mutex lock (paper Table V, row 1).
 *
 * Built as a standalone shared library; HMC-Sim resolves the three symbols
 * below with dlsym(3) when the user calls hmcsim_load_cmc().
 */
#include "mutex_common.h"

/* ABI handshake: report the header version this plugin was built against. */
HMCSIM_CMC_DEFINE_ABI_VERSION()

/* Table III static globals describing this operation. */
static const char *op_name = "hmc_lock";
static const hmc_rqst_t rqst = HMC_CMC125;
static const uint32_t cmd = 125;
static const uint32_t rqst_len = 2;
static const uint32_t rsp_len = 2;
static const hmc_response_t rsp_cmd = HMC_WR_RS;
static const uint8_t rsp_cmd_code = 0;

int hmcsim_register_cmc(hmc_rqst_t *r, uint32_t *c, uint32_t *rq_len,
                        uint32_t *rs_len, hmc_response_t *rs_cmd,
                        uint8_t *rs_code) {
  *r = rqst;
  *c = cmd;
  *rq_len = rqst_len;
  *rs_len = rsp_len;
  *rs_cmd = rsp_cmd;
  *rs_code = rsp_cmd_code;
  return 0;
}

int hmcsim_execute_cmc(void *hmc, uint32_t dev, uint32_t quad, uint32_t vault,
                       uint32_t bank, uint64_t addr, uint32_t length,
                       uint64_t head, uint64_t tail, uint64_t *rqst_payload,
                       uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  return hmc_lock_execute_impl(hmc, dev, addr, rqst_payload, rsp_payload);
}

void hmcsim_cmc_str(char *out) {
  (void)op_name;
  hmc_lock_str_impl(out);
}
