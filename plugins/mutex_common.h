/* mutex_common.h — shared implementation of the three CMC mutex operations
 * (paper Table V / Figure 4).
 *
 * The lock structure is one 16-byte FLIT of cube memory:
 *   bits  63:0   lock word  (0 = free, nonzero = held)
 *   bits 127:64  owner thread/task ID (undefined while free)
 *
 * The implementations are static inline so the same logic backs both the
 * standalone shared-library plugins (hmc_lock.c, hmc_trylock.c,
 * hmc_unlock.c) and the statically registered builtin table (builtin.c).
 * All state lives in *simulated* memory, so the operations are re-entrant
 * by construction.
 */
#ifndef HMCSIM_PLUGINS_MUTEX_COMMON_H
#define HMCSIM_PLUGINS_MUTEX_COMMON_H

#include <string.h>

#include "core/cmc_api.h"

/* ---- hmc_lock (CMC125) -------------------------------------------------
 * IF (ADDR[63:0] == 0) { ADDR[127:64] = TID; ADDR[63:0] = 1; RET 1 }
 * ELSE { RET 0 }
 */
static inline int hmc_lock_execute_impl(void *hmc, uint32_t dev,
                                        uint64_t addr,
                                        const uint64_t *rqst_payload,
                                        uint64_t *rsp_payload) {
  uint64_t lock[2];
  const uint64_t tid = rqst_payload[0];
  if (hmcsim_cmc_mem_read(hmc, dev, addr, lock, 2) != 0) {
    return -1;
  }
  if (lock[0] == 0) {
    lock[0] = 1;
    lock[1] = tid;
    if (hmcsim_cmc_mem_write(hmc, dev, addr, lock, 2) != 0) {
      return -1;
    }
    rsp_payload[0] = 1;
    (void)hmcsim_cmc_set_af(hmc, 1);
  } else {
    rsp_payload[0] = 0;
    (void)hmcsim_cmc_set_af(hmc, 0);
  }
  rsp_payload[1] = 0;
  return 0;
}

static inline int hmc_lock_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                         uint32_t *rqst_len,
                                         uint32_t *rsp_len,
                                         hmc_response_t *rsp_cmd,
                                         uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC125;
  *cmd = 125;
  *rqst_len = 2;
  *rsp_len = 2;
  *rsp_cmd = HMC_WR_RS;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_lock_str_impl(char *out) {
  strncpy(out, "hmc_lock", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_trylock (CMC126) ----------------------------------------------
 * Attempts the same acquisition as hmc_lock, but the response payload
 * carries the thread ID that holds the lock after the operation: the
 * encountering thread owns the lock iff the returned ID is its own.
 */
static inline int hmc_trylock_execute_impl(void *hmc, uint32_t dev,
                                           uint64_t addr,
                                           const uint64_t *rqst_payload,
                                           uint64_t *rsp_payload) {
  uint64_t lock[2];
  const uint64_t tid = rqst_payload[0];
  if (hmcsim_cmc_mem_read(hmc, dev, addr, lock, 2) != 0) {
    return -1;
  }
  if (lock[0] == 0) {
    lock[0] = 1;
    lock[1] = tid;
    if (hmcsim_cmc_mem_write(hmc, dev, addr, lock, 2) != 0) {
      return -1;
    }
    (void)hmcsim_cmc_set_af(hmc, 1);
  } else {
    (void)hmcsim_cmc_set_af(hmc, 0);
  }
  rsp_payload[0] = lock[1]; /* current owner after the attempt */
  rsp_payload[1] = lock[0]; /* lock word, for diagnostics */
  return 0;
}

static inline int hmc_trylock_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                            uint32_t *rqst_len,
                                            uint32_t *rsp_len,
                                            hmc_response_t *rsp_cmd,
                                            uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC126;
  *cmd = 126;
  *rqst_len = 2;
  *rsp_len = 2;
  *rsp_cmd = HMC_RD_RS;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_trylock_str_impl(char *out) {
  strncpy(out, "hmc_trylock", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_unlock (CMC127) -----------------------------------------------
 * IF (ADDR[127:64] == TID && ADDR[63:0] == 1) { ADDR[63:0] = 0; RET 1 }
 * ELSE { RET 0 }
 */
static inline int hmc_unlock_execute_impl(void *hmc, uint32_t dev,
                                          uint64_t addr,
                                          const uint64_t *rqst_payload,
                                          uint64_t *rsp_payload) {
  uint64_t lock[2];
  const uint64_t tid = rqst_payload[0];
  if (hmcsim_cmc_mem_read(hmc, dev, addr, lock, 2) != 0) {
    return -1;
  }
  if (lock[1] == tid && lock[0] == 1) {
    lock[0] = 0;
    if (hmcsim_cmc_mem_write(hmc, dev, addr, lock, 2) != 0) {
      return -1;
    }
    rsp_payload[0] = 1;
    (void)hmcsim_cmc_set_af(hmc, 1);
  } else {
    rsp_payload[0] = 0;
    (void)hmcsim_cmc_set_af(hmc, 0);
  }
  rsp_payload[1] = 0;
  return 0;
}

static inline int hmc_unlock_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                           uint32_t *rqst_len,
                                           uint32_t *rsp_len,
                                           hmc_response_t *rsp_cmd,
                                           uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC127;
  *cmd = 127;
  *rqst_len = 2;
  *rsp_len = 2;
  *rsp_cmd = HMC_WR_RS;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_unlock_str_impl(char *out) {
  strncpy(out, "hmc_unlock", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

#endif /* HMCSIM_PLUGINS_MUTEX_COMMON_H */
