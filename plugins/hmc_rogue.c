/* hmc_rogue.c — CMC70: deliberately misbehaving operation for exercising
 * the fault-containment layer. NOT a model of any real CMC op.
 *
 * The low address bits select the behaviour of each execute call, so one
 * registration can produce every failure class the guard must contain:
 *
 *   (addr >> 4) & 0x7
 *     0  behave: write the two declared response words, read one word of
 *        simulated memory (a well-behaved control within the same slot)
 *     1  fail: return nonzero from execute
 *     2  overrun: write far past the declared rsp_payload length (stays
 *        within the 32-word response buffer, so the canary — not the
 *        address sanitizer — must catch it)
 *     3  budget bust: stream mem_read calls until the per-call word
 *        budget refuses them, ignore the error codes and return 0 (the
 *        simulator must force the call to fail anyway)
 *     4  bad call: hmcsim_cmc_mem_read with NULL data, ignore the error
 *        and return 0 (again: forced failure expected)
 *   other  behave (same as 0)
 */
#include <stddef.h>
#include <string.h>

#include "core/cmc_api.h"

HMCSIM_CMC_DEFINE_ABI_VERSION()

static const char *op_name = "hmc_rogue";
static const hmc_rqst_t rqst = HMC_CMC70;
static const uint32_t cmd = 70;
static const uint32_t rqst_len = 2;  /* header/tail + 2 request words */
static const uint32_t rsp_len = 2;   /* header/tail + 2 response words */
static const hmc_response_t rsp_cmd = HMC_RD_RS;

/* Large enough to out-read any budget a test would configure, small
 * enough (512 words * 256 calls = 1 MiB traffic) to stay quick. */
#define HMC_ROGUE_CHUNK_WORDS 512u
#define HMC_ROGUE_MAX_CHUNKS 256u

int hmcsim_register_cmc(hmc_rqst_t *r, uint32_t *c, uint32_t *rq_len,
                        uint32_t *rs_len, hmc_response_t *rs_cmd,
                        uint8_t *rs_code) {
  *r = rqst;
  *c = cmd;
  *rq_len = rqst_len;
  *rs_len = rsp_len;
  *rs_cmd = rsp_cmd;
  *rs_code = 0;
  return 0;
}

int hmcsim_execute_cmc(void *hmc, uint32_t dev, uint32_t quad, uint32_t vault,
                       uint32_t bank, uint64_t addr, uint32_t length,
                       uint64_t head, uint64_t tail, uint64_t *rqst_payload,
                       uint64_t *rsp_payload) {
  (void)quad;
  (void)vault;
  (void)bank;
  (void)length;
  (void)head;
  (void)tail;
  (void)rqst_payload;
  static uint64_t scratch[HMC_ROGUE_CHUNK_WORDS];
  const uint64_t mode = (addr >> 4) & 0x7u;

  switch (mode) {
    case 1: /* plain failure */
      return 1;

    case 2: /* response payload overrun: 2 words declared, 12 written */
      for (size_t i = 0; i < 12; ++i) {
        rsp_payload[i] = 0xB0B0B0B000000000ull + i;
      }
      return 0;

    case 3: /* memory budget bust, errors ignored */
      for (uint32_t i = 0; i < HMC_ROGUE_MAX_CHUNKS; ++i) {
        if (hmcsim_cmc_mem_read(hmc, dev, addr & ~0xFFFull, scratch,
                                HMC_ROGUE_CHUNK_WORDS) != HMCSIM_CMC_OK) {
          break;
        }
      }
      rsp_payload[0] = 0;
      rsp_payload[1] = 0;
      return 0;

    case 4: /* null data pointer, error ignored */
      (void)hmcsim_cmc_mem_read(hmc, dev, addr, NULL, 4);
      rsp_payload[0] = 0;
      rsp_payload[1] = 0;
      return 0;

    default: /* behave */
      (void)hmcsim_cmc_mem_read(hmc, dev, addr & ~0x7ull, scratch, 1);
      rsp_payload[0] = scratch[0];
      rsp_payload[1] = addr;
      return 0;
  }
}

void hmcsim_cmc_str(char *out) {
  strncpy(out, op_name, HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}
