/* extras_common.h — shared implementations of the example (non-mutex) CMC
 * operations. Like mutex_common.h, these back both the standalone shared
 * libraries and the statically registered builtin table.
 *
 * Operations:
 *   hmc_popcnt   (CMC32)  population count of the 16-byte block; 1-FLIT
 *                         request (no operand), 2-FLIT RD_RS response.
 *   hmc_fadd_f64 (CMC56)  IEEE-754 double atomic add; returns the original
 *                         value via a *custom* RSP_CMC response code, the
 *                         paper's "non-traditional response command".
 *   hmc_fetchmax (CMC60)  signed 64-bit fetch-and-max.
 *   hmc_bloomset (CMC90)  treats the 16-byte block as a 128-bit Bloom
 *                         filter: sets three hash-derived bits and reports
 *                         prior membership through the AF flag.
 *   hmc_zero16   (CMC120) posted block clear: no response packet at all.
 */
#ifndef HMCSIM_PLUGINS_EXTRAS_COMMON_H
#define HMCSIM_PLUGINS_EXTRAS_COMMON_H

#include <string.h>

#include "core/cmc_api.h"

/* Custom wire code hmc_fadd_f64 uses for its RSP_CMC response. */
#define HMC_FADD_F64_RSP_CODE 0x70

/* ---- hmc_popcnt (CMC32) ------------------------------------------------ */

static inline uint64_t hmcsim_extras_popcnt64(uint64_t v) {
  uint64_t count = 0;
  while (v != 0) {
    v &= v - 1;
    ++count;
  }
  return count;
}

static inline int hmc_popcnt_execute_impl(void *hmc, uint32_t dev,
                                          uint64_t addr,
                                          uint64_t *rsp_payload) {
  uint64_t block[2];
  if (hmcsim_cmc_mem_read(hmc, dev, addr, block, 2) != 0) {
    return -1;
  }
  rsp_payload[0] =
      hmcsim_extras_popcnt64(block[0]) + hmcsim_extras_popcnt64(block[1]);
  rsp_payload[1] = 0;
  return 0;
}

static inline int hmc_popcnt_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                           uint32_t *rqst_len,
                                           uint32_t *rsp_len,
                                           hmc_response_t *rsp_cmd,
                                           uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC32;
  *cmd = 32;
  *rqst_len = 1;
  *rsp_len = 2;
  *rsp_cmd = HMC_RD_RS;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_popcnt_str_impl(char *out) {
  strncpy(out, "hmc_popcnt", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_fadd_f64 (CMC56) ---------------------------------------------- */

static inline int hmc_fadd_f64_execute_impl(void *hmc, uint32_t dev,
                                            uint64_t addr,
                                            const uint64_t *rqst_payload,
                                            uint64_t *rsp_payload) {
  uint64_t raw;
  if (hmcsim_cmc_mem_read(hmc, dev, addr, &raw, 1) != 0) {
    return -1;
  }
  double mem;
  double operand;
  memcpy(&mem, &raw, sizeof(mem));
  memcpy(&operand, &rqst_payload[0], sizeof(operand));
  const double sum = mem + operand;
  uint64_t out_raw;
  memcpy(&out_raw, &sum, sizeof(out_raw));
  if (hmcsim_cmc_mem_write(hmc, dev, addr, &out_raw, 1) != 0) {
    return -1;
  }
  rsp_payload[0] = raw; /* original value */
  rsp_payload[1] = 0;
  return 0;
}

static inline int hmc_fadd_f64_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                             uint32_t *rqst_len,
                                             uint32_t *rsp_len,
                                             hmc_response_t *rsp_cmd,
                                             uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC56;
  *cmd = 56;
  *rqst_len = 2;
  *rsp_len = 2;
  *rsp_cmd = HMC_RSP_CMC;
  *rsp_cmd_code = HMC_FADD_F64_RSP_CODE;
  return 0;
}

static inline void hmc_fadd_f64_str_impl(char *out) {
  strncpy(out, "hmc_fadd_f64", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_fetchmax (CMC60) ----------------------------------------------- */

static inline int hmc_fetchmax_execute_impl(void *hmc, uint32_t dev,
                                            uint64_t addr,
                                            const uint64_t *rqst_payload,
                                            uint64_t *rsp_payload) {
  uint64_t raw;
  if (hmcsim_cmc_mem_read(hmc, dev, addr, &raw, 1) != 0) {
    return -1;
  }
  const int64_t mem = (int64_t)raw;
  const int64_t operand = (int64_t)rqst_payload[0];
  if (operand > mem) {
    const uint64_t store = (uint64_t)operand;
    if (hmcsim_cmc_mem_write(hmc, dev, addr, &store, 1) != 0) {
      return -1;
    }
    (void)hmcsim_cmc_set_af(hmc, 1);
  } else {
    (void)hmcsim_cmc_set_af(hmc, 0);
  }
  rsp_payload[0] = raw; /* original value */
  rsp_payload[1] = 0;
  return 0;
}

static inline int hmc_fetchmax_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                             uint32_t *rqst_len,
                                             uint32_t *rsp_len,
                                             hmc_response_t *rsp_cmd,
                                             uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC60;
  *cmd = 60;
  *rqst_len = 2;
  *rsp_len = 2;
  *rsp_cmd = HMC_RD_RS;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_fetchmax_str_impl(char *out) {
  strncpy(out, "hmc_fetchmax", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_bloomset (CMC90) ----------------------------------------------- */

static inline int hmc_bloomset_execute_impl(void *hmc, uint32_t dev,
                                            uint64_t addr,
                                            const uint64_t *rqst_payload,
                                            uint64_t *rsp_payload) {
  uint64_t block[2];
  if (hmcsim_cmc_mem_read(hmc, dev, addr, block, 2) != 0) {
    return -1;
  }
  /* Three cheap, independent hash bits over the 128-bit filter. */
  const uint64_t key = rqst_payload[0];
  uint64_t h = key * 0x9E3779B97F4A7C15ULL;
  int present = 1;
  for (int i = 0; i < 3; ++i) {
    const unsigned bit = (unsigned)(h & 127U);
    uint64_t *word = &block[bit >> 6];
    const uint64_t mask = 1ULL << (bit & 63U);
    if ((*word & mask) == 0) {
      present = 0;
      *word |= mask;
    }
    h = (h >> 21) | (h << 43);
  }
  if (hmcsim_cmc_mem_write(hmc, dev, addr, block, 2) != 0) {
    return -1;
  }
  (void)hmcsim_cmc_set_af(hmc, present);
  rsp_payload[0] = (uint64_t)present;
  rsp_payload[1] = 0;
  return 0;
}

static inline int hmc_bloomset_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                             uint32_t *rqst_len,
                                             uint32_t *rsp_len,
                                             hmc_response_t *rsp_cmd,
                                             uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC90;
  *cmd = 90;
  *rqst_len = 2;
  *rsp_len = 2;
  *rsp_cmd = HMC_WR_RS;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_bloomset_str_impl(char *out) {
  strncpy(out, "hmc_bloomset", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_zero16 (CMC120, posted) ----------------------------------------- */

static inline int hmc_zero16_execute_impl(void *hmc, uint32_t dev,
                                          uint64_t addr) {
  const uint64_t zeros[2] = {0, 0};
  return hmcsim_cmc_mem_write(hmc, dev, addr, zeros, 2) != 0 ? -1 : 0;
}

static inline int hmc_zero16_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                           uint32_t *rqst_len,
                                           uint32_t *rsp_len,
                                           hmc_response_t *rsp_cmd,
                                           uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC120;
  *cmd = 120;
  *rqst_len = 1;
  *rsp_len = 0; /* posted */
  *rsp_cmd = HMC_RSP_NONE;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_zero16_str_impl(char *out) {
  strncpy(out, "hmc_zero16", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_satinc (CMC21) --------------------------------------------------
 * Saturating 64-bit increment: the counter sticks at UINT64_MAX instead of
 * wrapping. Returns the original value; AF reports saturation. */

static inline int hmc_satinc_execute_impl(void *hmc, uint32_t dev,
                                          uint64_t addr,
                                          uint64_t *rsp_payload) {
  uint64_t value;
  if (hmcsim_cmc_mem_read(hmc, dev, addr, &value, 1) != 0) {
    return -1;
  }
  rsp_payload[0] = value;
  rsp_payload[1] = 0;
  if (value == UINT64_MAX) {
    (void)hmcsim_cmc_set_af(hmc, 1);
    return 0; /* Already saturated: no write. */
  }
  const uint64_t next = value + 1;
  (void)hmcsim_cmc_set_af(hmc, next == UINT64_MAX);
  return hmcsim_cmc_mem_write(hmc, dev, addr, &next, 1) != 0 ? -1 : 0;
}

static inline int hmc_satinc_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                           uint32_t *rqst_len,
                                           uint32_t *rsp_len,
                                           hmc_response_t *rsp_cmd,
                                           uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC21;
  *cmd = 21;
  *rqst_len = 1;
  *rsp_len = 2;
  *rsp_cmd = HMC_RD_RS;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_satinc_str_impl(char *out) {
  strncpy(out, "hmc_satinc", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

/* ---- hmc_memfill (CMC110, posted) ----------------------------------------
 * Arbitrarily complex example: fills payload[1] consecutive 16-byte blocks
 * starting at addr with the 64-bit pattern payload[0] — a whole memset
 * executed in-memory from one 2-FLIT posted request. The block count is
 * clamped to 256 (4 KiB) to bound the single-cycle work a packet can do. */

#define HMC_MEMFILL_MAX_BLOCKS 256u

static inline int hmc_memfill_execute_impl(void *hmc, uint32_t dev,
                                           uint64_t addr,
                                           const uint64_t *rqst_payload) {
  const uint64_t pattern = rqst_payload[0];
  uint64_t blocks = rqst_payload[1];
  if (blocks > HMC_MEMFILL_MAX_BLOCKS) {
    blocks = HMC_MEMFILL_MAX_BLOCKS;
    /* Expressive tracing: report the clamp so the trace explains the
     * partial effect. */
    (void)hmcsim_cmc_trace(hmc, "memfill block count clamped to 256");
  }
  const uint64_t words[2] = {pattern, pattern};
  for (uint64_t b = 0; b < blocks; ++b) {
    if (hmcsim_cmc_mem_write(hmc, dev, addr + 16 * b, words, 2) != 0) {
      return -1;
    }
  }
  return 0;
}

static inline int hmc_memfill_register_impl(hmc_rqst_t *rqst, uint32_t *cmd,
                                            uint32_t *rqst_len,
                                            uint32_t *rsp_len,
                                            hmc_response_t *rsp_cmd,
                                            uint8_t *rsp_cmd_code) {
  *rqst = HMC_CMC110;
  *cmd = 110;
  *rqst_len = 2;
  *rsp_len = 0; /* posted */
  *rsp_cmd = HMC_RSP_NONE;
  *rsp_cmd_code = 0;
  return 0;
}

static inline void hmc_memfill_str_impl(char *out) {
  strncpy(out, "hmc_memfill", HMCSIM_CMC_STR_MAX - 1);
  out[HMCSIM_CMC_STR_MAX - 1] = '\0';
}

#endif /* HMCSIM_PLUGINS_EXTRAS_COMMON_H */
