// mutex_contention.cpp — the paper's headline experiment, runnable.
//
// Loads the three CMC mutex operations (via dlopen when a plugin directory
// is given, otherwise via static registration) and runs Algorithm 1 with N
// threads hammering one shared lock, printing MIN/MAX/AVG lock cycles.
//
//   ./build/examples/mutex_contention [threads] [4|8] [plugin_dir]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "host/mutex_driver.hpp"
#include "plugins/builtin.h"
#include "sim/simulator.hpp"

using namespace hmcsim;

int main(int argc, char** argv) {
  const std::uint32_t threads =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const int links = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string plugin_dir = argc > 3 ? argv[3] : "";

  const sim::Config cfg = links == 8 ? sim::Config::hmc_8link_8gb()
                                     : sim::Config::hmc_4link_4gb();
  std::unique_ptr<sim::Simulator> sim;
  if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return 1;
  }

  // Register the mutex trio — through the real shared libraries when a
  // plugin directory is provided, statically otherwise.
  if (!plugin_dir.empty()) {
    for (const char* so : {"hmc_lock.so", "hmc_trylock.so", "hmc_unlock.so"}) {
      const std::string path = plugin_dir + "/" + so;
      if (Status s = sim->load_cmc(path); !s.ok()) {
        std::fprintf(stderr, "load_cmc(%s): %s\n", path.c_str(),
                     s.to_string().c_str());
        return 1;
      }
    }
    std::printf("loaded mutex CMC operations from %s\n", plugin_dir.c_str());
  } else {
    struct Op {
      hmcsim_cmc_register_fn reg;
      hmcsim_cmc_execute_fn exec;
      hmcsim_cmc_str_fn str;
    };
    for (const Op& op :
         {Op{hmcsim_builtin_lock_register, hmcsim_builtin_lock_execute,
             hmcsim_builtin_lock_str},
          Op{hmcsim_builtin_trylock_register, hmcsim_builtin_trylock_execute,
             hmcsim_builtin_trylock_str},
          Op{hmcsim_builtin_unlock_register, hmcsim_builtin_unlock_execute,
             hmcsim_builtin_unlock_str}}) {
      if (Status s = sim->register_cmc(op.reg, op.exec, op.str); !s.ok()) {
        std::fprintf(stderr, "register: %s\n", s.to_string().c_str());
        return 1;
      }
    }
  }

  std::printf("device: %s, threads: %u\n", cfg.describe().c_str(), threads);

  // Per-operation latency distribution, collected from the trace stream.
  trace::LatencySink latency;
  sim->tracer().attach(&latency);
  sim->tracer().set_level(trace::Level::Latency);

  host::MutexOptions opts;
  opts.lock_addr = 0x4000;
  host::MutexResult result;
  if (Status s = host::run_mutex_contention(*sim, threads, opts, result);
      !s.ok()) {
    std::fprintf(stderr, "mutex run: %s\n", s.to_string().c_str());
    return 1;
  }
  sim->tracer().detach(&latency);

  std::printf("MIN_CYCLE: %llu\n",
              static_cast<unsigned long long>(result.min_cycles));
  std::printf("MAX_CYCLE: %llu\n",
              static_cast<unsigned long long>(result.max_cycles));
  std::printf("AVG_CYCLE: %.2f\n", result.avg_cycles);
  std::printf("trylock attempts: %llu, initial lock failures: %llu, "
              "send retries: %llu\n",
              static_cast<unsigned long long>(result.trylock_attempts),
              static_cast<unsigned long long>(result.lock_failures),
              static_cast<unsigned long long>(result.send_retries));
  std::printf("per-op latency: %llu ops, mean %.2f, p50 %llu, p95 %llu, "
              "p99 %llu cycles\n",
              static_cast<unsigned long long>(latency.count()),
              latency.mean(),
              static_cast<unsigned long long>(latency.percentile(0.50)),
              static_cast<unsigned long long>(latency.percentile(0.95)),
              static_cast<unsigned long long>(latency.percentile(0.99)));
  return 0;
}
