// stream_bandwidth.cpp — STREAM Triad bandwidth across access granularity.
//
// Runs a[i] = b[i] + s*c[i] with block sizes from 16 B to 256 B (the Gen2
// read/write command family) and reports sustained payload bandwidth —
// the stride-1 half of HMC-Sim 1.0's original evaluation, on both the
// 4-link and 8-link devices.
//
//   ./build/examples/stream_bandwidth [elements]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "host/kernels/stream_triad.hpp"
#include "sim/simulator.hpp"

using namespace hmcsim;

int main(int argc, char** argv) {
  const std::uint64_t elements =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;

  std::printf("%-12s %-8s %12s %12s %12s %10s\n", "device", "block",
              "cycles", "rqst FLITs", "rsp FLITs", "B/cycle");

  for (const auto& [cfg, name] :
       {std::pair{sim::Config::hmc_4link_4gb(), "4Link-4GB"},
        std::pair{sim::Config::hmc_8link_8gb(), "8Link-8GB"}}) {
    for (const std::uint32_t block : {16U, 32U, 64U, 128U, 256U}) {
      std::unique_ptr<sim::Simulator> sim;
      if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
        std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
        return 1;
      }
      host::StreamTriadOptions opts;
      opts.elements = elements;
      opts.block_bytes = block;
      opts.concurrency = 64;
      host::KernelResult result;
      if (Status s = host::run_stream_triad(*sim, opts, result); !s.ok()) {
        std::fprintf(stderr, "triad(%u): %s\n", block,
                     s.to_string().c_str());
        return 1;
      }
      std::printf("%-12s %-8u %12llu %12llu %12llu %10.3f\n", name, block,
                  static_cast<unsigned long long>(result.cycles),
                  static_cast<unsigned long long>(result.rqst_flits),
                  static_cast<unsigned long long>(result.rsp_flits),
                  result.bytes_per_cycle());
    }
  }
  std::printf("all runs verified: a[] matched the expected triad result.\n");
  return 0;
}
