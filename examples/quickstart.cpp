// quickstart.cpp — minimal tour of the HMC-Sim public API.
//
// Creates the paper's 4Link-4GB device, performs a write/read round trip,
// runs a Gen2 atomic, loads a CMC operation, and prints what happened at
// each step. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "plugins/builtin.h"
#include "sim/sim_stats.hpp"
#include "sim/simulator.hpp"

using namespace hmcsim;

namespace {

/// Clock until a response is ready on `link`, then receive it.
sim::Response wait_response(sim::Simulator& sim, std::uint32_t link) {
  sim::Response rsp;
  while (!sim.rsp_ready(link)) {
    sim.clock();
  }
  if (!sim.recv(link, rsp).ok()) {
    std::fprintf(stderr, "recv failed\n");
    std::exit(1);
  }
  return rsp;
}

}  // namespace

int main() {
  // 1. Configure and create the simulator: one 4-link, 4 GB Gen2 cube.
  std::unique_ptr<sim::Simulator> sim;
  const sim::Config cfg = sim::Config::hmc_4link_4gb();
  if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("device: %s\n", cfg.describe().c_str());

  // 2. Write 16 bytes, then read them back through the packet pipeline.
  const std::uint64_t addr = 0x1000;
  const std::uint64_t payload[2] = {0xDEADBEEFCAFEF00DULL, 42};
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::WR16;
  wr.addr = addr;
  wr.tag = 1;
  wr.payload = payload;
  if (Status s = sim->send(wr, /*link=*/0); !s.ok()) {
    std::fprintf(stderr, "send WR16: %s\n", s.to_string().c_str());
    return 1;
  }
  sim::Response rsp = wait_response(*sim, 0);
  std::printf("WR16  -> rsp cmd=0x%02X tag=%u latency=%llu cycles\n",
              rsp.pkt.cmd(), rsp.pkt.tag(),
              static_cast<unsigned long long>(rsp.latency));

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = addr;
  rd.tag = 2;
  if (Status s = sim->send(rd, 0); !s.ok()) {
    std::fprintf(stderr, "send RD16: %s\n", s.to_string().c_str());
    return 1;
  }
  rsp = wait_response(*sim, 0);
  std::printf("RD16  -> data[0]=0x%016llX data[1]=%llu latency=%llu\n",
              static_cast<unsigned long long>(rsp.pkt.payload()[0]),
              static_cast<unsigned long long>(rsp.pkt.payload()[1]),
              static_cast<unsigned long long>(rsp.latency));

  // 3. A Gen2 atomic: increment the counter at addr+8 in-situ.
  spec::RqstParams inc;
  inc.rqst = spec::Rqst::INC8;
  inc.addr = addr + 8;
  inc.tag = 3;
  if (Status s = sim->send(inc, 0); !s.ok()) {
    std::fprintf(stderr, "send INC8: %s\n", s.to_string().c_str());
    return 1;
  }
  rsp = wait_response(*sim, 0);
  std::uint64_t counter = 0;
  (void)sim->device(0).store().read_u64(addr + 8, counter);
  std::printf("INC8  -> counter now %llu (was 42)\n",
              static_cast<unsigned long long>(counter));

  // 4. Register a Custom Memory Cube operation (the 128-bit popcount) and
  //    invoke it like any other command.
  if (Status s = sim->register_cmc(hmcsim_builtin_popcnt_register,
                                   hmcsim_builtin_popcnt_execute,
                                   hmcsim_builtin_popcnt_str);
      !s.ok()) {
    std::fprintf(stderr, "register_cmc: %s\n", s.to_string().c_str());
    return 1;
  }
  const cmc::CmcOp* op = sim->cmc_registry().lookup(spec::Rqst::CMC32);
  std::printf("CMC   -> registered '%s' on command code %u\n",
              op->name.c_str(), op->cmd);

  spec::RqstParams pc;
  pc.rqst = spec::Rqst::CMC32;
  pc.addr = addr;
  pc.tag = 4;
  if (Status s = sim->send(pc, 0); !s.ok()) {
    std::fprintf(stderr, "send CMC32: %s\n", s.to_string().c_str());
    return 1;
  }
  rsp = wait_response(*sim, 0);
  std::printf("CMC32 -> popcount of block at 0x%llX = %llu bits\n",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(rsp.pkt.payload()[0]));

  const sim::SimStats stats = sim::collect_stats(*sim);
  std::printf("total: %llu cycles, %llu requests, %llu responses\n",
              static_cast<unsigned long long>(stats.cycles),
              static_cast<unsigned long long>(stats.rqsts_processed),
              static_cast<unsigned long long>(stats.rsps_generated));
  return 0;
}
