/* cosim_client.c — minimal co-simulation client (pure C).
 *
 * Attaches to a running server and drives a deterministic read/write
 * mix, spreading requests over the host links:
 *
 *   hmcsim_cli serve /tmp/hmcsim.sock --clients 2 &
 *   cosim_client /tmp/hmcsim.sock 0 256 &
 *   cosim_client /tmp/hmcsim.sock 1 256
 *
 * Arguments: <socket-path> <slot> [requests] [batch]. The workload is a
 * fixed function of the slot, so two runs of the same client set produce
 * byte-identical server statistics (docs/COSIM.md). Exits 0 only if
 * every expected response came back.
 */
#include <inttypes.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "src/capi/hmc_cosim_client.h"

/* Gen2 command codes used below (see `hmcsim_cli commands`). */
#define RQST_WR64 11u
#define RQST_RD64 51u

int main(int argc, char **argv) {
  if (argc < 3) {
    fprintf(stderr, "usage: cosim_client <socket> <slot> [requests] [batch]\n");
    return 2;
  }
  const char *socket_path = argv[1];
  const uint32_t slot = (uint32_t)strtoul(argv[2], NULL, 10);
  const uint32_t total = argc > 3 ? (uint32_t)strtoul(argv[3], NULL, 10) : 256;
  const uint32_t batch = argc > 4 ? (uint32_t)strtoul(argv[4], NULL, 10) : 16;

  hmc_cosim_t *c = hmc_cosim_connect(socket_path, slot, 10000);
  if (c == NULL) {
    fprintf(stderr, "cosim_client %u: connect to %s failed\n", slot,
            socket_path);
    return 1;
  }
  const uint32_t links = hmc_cosim_num_links(c);
  const uint64_t quantum = hmc_cosim_quantum(c);

  /* Deterministic per-slot address stream (LCG). Each slot owns its own
   * 1 MiB window so clients never alias each other's lines. */
  uint64_t lcg = 0x9E3779B97F4A7C15ull ^ ((uint64_t)slot << 32);
  uint32_t sent = 0;
  uint32_t received = 0;
  uint16_t tag = 0;
  uint64_t data[8];

  while (sent < total || received < total) {
    uint32_t burst = batch;
    if (sent + burst > total) {
      burst = total - sent;
    }
    for (uint32_t i = 0; i < burst; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const uint64_t addr = ((uint64_t)slot << 20) | ((lcg >> 16) & 0xFFFC0u);
      const uint32_t link = (slot + sent) % links;
      tag = (uint16_t)((tag + 1u) & 0x7FFu);
      int rc;
      if ((sent & 1u) == 0u) {
        for (unsigned w = 0; w < 8; ++w) {
          data[w] = lcg ^ w;
        }
        rc = hmc_cosim_send(c, link, RQST_WR64, 0, addr, tag, data, 8);
      } else {
        rc = hmc_cosim_send(c, link, RQST_RD64, 0, addr, tag, NULL, 0);
      }
      if (rc != HMC_COSIM_OK) {
        fprintf(stderr, "cosim_client %u: send failed (%d)\n", slot, rc);
        hmc_cosim_disconnect(c);
        return 1;
      }
      ++sent;
    }
    if (hmc_cosim_clock(c, quantum) != HMC_COSIM_OK) {
      fprintf(stderr, "cosim_client %u: clock failed\n", slot);
      hmc_cosim_disconnect(c);
      return 1;
    }
    uint8_t cmd;
    uint16_t rtag;
    uint64_t payload[32];
    uint32_t words = 32;
    uint64_t latency;
    while (hmc_cosim_recv(c, &cmd, &rtag, payload, &words, &latency) ==
           HMC_COSIM_OK) {
      ++received;
      words = 32;
    }
  }

  const uint64_t cycle = hmc_cosim_cycle(c);
  hmc_cosim_disconnect(c);
  printf("cosim_client %u: sent %u, received %u, cycle %" PRIu64 "\n", slot,
         sent, received, cycle);
  return received == total ? 0 : 1;
}
