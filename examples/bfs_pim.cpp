// bfs_pim.cpp — CAS-accelerated graph traversal (the related-work case
// study the paper cites: instruction offloading for BFS with HMC 2.0
// atomics).
//
// Runs breadth-first search over a synthetic random graph twice: the
// visited-array check-and-update done host-side (RD16 + WR16 per claim)
// and in-memory (one CASEQ8 per claim), and compares cycles and link
// traffic. Both runs are verified against a host-side reference BFS.
//
//   ./build/examples/bfs_pim [vertices] [avg_degree]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/host/kernels/bfs.hpp"

using namespace hmcsim;

int main(int argc, char** argv) {
  host::BfsOptions opts;
  opts.vertices =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4096;
  opts.avg_degree =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;
  opts.concurrency = 64;

  std::printf("BFS over a random graph: %u vertices, avg degree %u\n",
              opts.vertices, opts.avg_degree);
  std::printf("%-22s %10s %12s %12s %10s %10s\n", "mode", "cycles",
              "rqst FLITs", "rsp FLITs", "reached", "levels");

  host::BfsResult cas;
  host::BfsResult rmw;
  for (const auto& [mode, name, result] :
       {std::tuple{host::BfsMode::ReadModifyWrite, "host check-and-update",
                   &rmw},
        std::tuple{host::BfsMode::CasAtomic, "CASEQ8 in-memory", &cas}}) {
    std::unique_ptr<sim::Simulator> sim;
    if (!sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok()) {
      return 1;
    }
    opts.mode = mode;
    if (Status s = host::run_bfs(*sim, opts, *result); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, s.to_string().c_str());
      return 1;
    }
    std::printf("%-22s %10llu %12llu %12llu %10u %10u\n", name,
                static_cast<unsigned long long>(result->kernel.cycles),
                static_cast<unsigned long long>(result->kernel.rqst_flits),
                static_cast<unsigned long long>(result->kernel.rsp_flits),
                result->reached, result->max_level);
  }

  const double traffic_saving =
      100.0 *
      (1.0 - static_cast<double>(cas.kernel.rqst_flits +
                                 cas.kernel.rsp_flits) /
                 static_cast<double>(rmw.kernel.rqst_flits +
                                     rmw.kernel.rsp_flits));
  const double speedup = static_cast<double>(rmw.kernel.cycles) /
                         static_cast<double>(cas.kernel.cycles);
  std::printf("\nCAS offload: %.1f%% less link traffic, %.2fx faster; "
              "both runs verified against a reference BFS.\n",
              traffic_saving, speedup);
  return 0;
}
