// synthetic_load.cpp — the Frontend/MemoryBackend seam, end to end.
//
// Creates a workload by name from the frontend registry, wires it to an
// HMC backend, and lets the shared runner drive it: the same three calls
// the CLI makes for every subcommand. Sweeps the four access patterns at
// a fixed seed so reruns are byte-reproducible.
//
//   ./build/examples/synthetic_load [count] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/backend/hmc_backend.hpp"
#include "src/frontend/frontend.hpp"
#include "src/frontend/runner.hpp"
#include "src/sim/simulator.hpp"

using namespace hmcsim;

int main(int argc, char** argv) {
  const char* count = argc > 1 ? argv[1] : "2048";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 0xC0FFEE;

  for (const char* pattern : {"uniform", "zipfian", "chase", "bursty"}) {
    sim::Config cfg = sim::Config::hmc_4link_4gb();
    cfg.workload_seed = seed;
    std::unique_ptr<sim::Simulator> sim;
    if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
      std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
      return 1;
    }
    backend::HmcBackend mem(*sim);

    frontend::FrontendOptions opts;
    opts.set("pattern", pattern);
    opts.set("count", count);
    opts.set("rate", "0.5");
    std::unique_ptr<frontend::Frontend> fe;
    if (Status s =
            frontend::FrontendRegistry::instance().create("synthetic", opts,
                                                          fe);
        !s.ok()) {
      std::fprintf(stderr, "synthetic: %s\n", s.to_string().c_str());
      return 1;
    }

    if (Status s = frontend::run(mem, *fe); !s.ok()) {
      std::fprintf(stderr, "run(%s): %s\n", pattern, s.to_string().c_str());
      return 1;
    }
    std::printf("%s", fe->summary().c_str());
    if (!fe->succeeded()) {
      return 1;
    }
  }
  return 0;
}
