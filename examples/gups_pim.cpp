// gups_pim.cpp — RandomAccess (GUPS) with and without in-memory atomics.
//
// Runs the HPCC RandomAccess update kernel twice over the same update
// stream: once as a host-side read-modify-write (the cache-based path) and
// once with the XOR16 Gen2 atomic (the PIM path), then reports cycles and
// link FLIT traffic for both — the motivation behind Table II, measured on
// a live workload.
//
//   ./build/examples/gups_pim [updates] [table_kwords]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "host/kernels/random_access.hpp"
#include "sim/simulator.hpp"

using namespace hmcsim;

int main(int argc, char** argv) {
  const std::uint64_t updates =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const std::uint64_t table_kwords =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

  host::RandomAccessOptions opts;
  opts.updates = updates;
  opts.table_words = table_kwords * 1024;
  opts.concurrency = 64;

  std::printf("%-20s %12s %12s %12s %10s %12s\n", "mode", "cycles",
              "rqst FLITs", "rsp FLITs", "GB/cyc*", "updates/cyc");

  for (const auto& [mode, name] :
       {std::pair{host::GupsMode::ReadModifyWrite, "host-RMW (cache)"},
        std::pair{host::GupsMode::Atomic, "XOR16 atomic (PIM)"}}) {
    std::unique_ptr<sim::Simulator> sim;
    if (Status s =
            sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim);
        !s.ok()) {
      std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
      return 1;
    }
    opts.mode = mode;
    host::KernelResult result;
    if (Status s = host::run_random_access(*sim, opts, result); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, s.to_string().c_str());
      return 1;
    }
    std::printf("%-20s %12llu %12llu %12llu %10.3f %12.4f\n", name,
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.rqst_flits),
                static_cast<unsigned long long>(result.rsp_flits),
                result.bytes_per_cycle(), result.ops_per_cycle());
  }
  std::printf("(*) payload bytes moved per simulated cycle; both runs were "
              "verified against a host-side replay of the update stream.\n");
  return 0;
}
