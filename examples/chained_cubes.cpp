// chained_cubes.cpp — multi-device topologies (HMC-Sim chaining).
//
// Builds a chain of four cubes behind one host-attached device, probes the
// per-hop latency with dependent reads, interrogates every cube's register
// file through MD_RD packets, and distributes a working set across the
// chain to show capacity scaling.
//
//   ./build/examples/chained_cubes [num_cubes] [chain|star]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/sim/simulator.hpp"

using namespace hmcsim;

namespace {

sim::Response roundtrip(sim::Simulator& sim, const spec::RqstParams& params) {
  Status s = sim.send(params, 0);
  while (s.stalled()) {
    sim.clock();
    s = sim.send(params, 0);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "send: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  while (!sim.rsp_ready(0)) {
    sim.clock();
  }
  sim::Response rsp;
  if (!sim.recv(0, rsp).ok()) {
    std::exit(1);
  }
  return rsp;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cubes =
      static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 4);
  sim::Config cfg = sim::Config::hmc_4link_4gb();
  cfg.num_devs = cubes;
  if (argc > 2 && std::string_view(argv[2]) == "star") {
    cfg.topology = sim::Topology::Star;
  }
  std::unique_ptr<sim::Simulator> sim;
  if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("%s of %u cubes (%s), total capacity %llu GB\n",
              std::string(sim::to_string(cfg.topology)).c_str(), cubes,
              cfg.describe().c_str(),
              static_cast<unsigned long long>(
                  cubes * (cfg.capacity_bytes >> 30)));

  // 1. Identify every cube through mode-read packets.
  std::puts("\nregister probe (MD_RD DeviceId / Capacity):");
  for (std::uint8_t cub = 0; cub < cubes; ++cub) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::MD_RD;
    rd.addr = static_cast<std::uint64_t>(dev::Reg::DeviceId);
    rd.cub = cub;
    const auto id = roundtrip(*sim, rd).pkt.payload()[0];
    rd.addr = static_cast<std::uint64_t>(dev::Reg::Capacity);
    const auto cap = roundtrip(*sim, rd).pkt.payload()[0];
    std::printf("  cube %u: DeviceId=%llu Capacity=%lluGB\n", cub,
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(cap >> 30));
  }

  // 2. Latency ladder.
  std::puts("\nlatency ladder (RD16 per cube):");
  for (std::uint8_t cub = 0; cub < cubes; ++cub) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0x40;
    rd.cub = cub;
    std::printf("  cube %u: %llu cycles\n", cub,
                static_cast<unsigned long long>(roundtrip(*sim, rd).latency));
  }

  // 3. Distribute a working set: one counter per cube, incremented
  //    round-robin; verify each landed on its own cube.
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (std::uint8_t cub = 0; cub < cubes; ++cub) {
      spec::RqstParams inc;
      inc.rqst = spec::Rqst::INC8;
      inc.addr = 0x1000;
      inc.cub = cub;
      (void)roundtrip(*sim, inc);
    }
  }
  std::puts("\ndistributed counters after 8 increment rounds:");
  bool ok = true;
  for (std::uint32_t cub = 0; cub < cubes; ++cub) {
    std::uint64_t v = 0;
    (void)sim->device(cub).store().read_u64(0x1000, v);
    std::printf("  cube %u: %llu\n", cub,
                static_cast<unsigned long long>(v));
    ok = ok && v == kRounds;
  }
  std::printf("\nforwarded requests per cube:");
  for (std::uint32_t cub = 0; cub < cubes; ++cub) {
    std::printf(" %llu", static_cast<unsigned long long>(
                             sim->device(cub).forwarded_rqsts().value()));
  }
  std::puts(ok ? "\nall counters correct" : "\nCOUNTER MISMATCH");
  return ok ? 0 : 1;
}
