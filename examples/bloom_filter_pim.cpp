// bloom_filter_pim.cpp — a custom PIM data structure built from a CMC op.
//
// Demonstrates the "creative experimentation" the CMC architecture is for:
// hmc_bloomset (CMC90) treats every 16-byte block as a 128-bit Bloom
// filter segment and performs insert+membership in one command, in memory.
// The example builds a sharded Bloom filter across many blocks, inserts a
// key set, then measures the false-positive rate of probes — all through
// the packet pipeline.
//
//   ./build/examples/bloom_filter_pim [keys] [segments]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.hpp"
#include "plugins/builtin.h"
#include "sim/simulator.hpp"

using namespace hmcsim;

namespace {

/// Send one bloomset op for `key` and return the "already present" answer.
bool bloom_insert(sim::Simulator& sim, std::uint64_t base,
                  std::uint64_t segments, std::uint64_t key) {
  const std::uint64_t seg = (key * 0xD6E8FEB86659FD93ULL) % segments;
  const std::uint64_t payload[2] = {key, 0};
  spec::RqstParams p;
  p.rqst = spec::Rqst::CMC90;
  p.addr = base + seg * 16;
  p.payload = payload;
  Status s = sim.send(p, 0);
  while (s.stalled()) {
    sim.clock();
    s = sim.send(p, 0);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "send: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  while (!sim.rsp_ready(0)) {
    sim.clock();
  }
  sim::Response rsp;
  if (!sim.recv(0, rsp).ok()) {
    std::exit(1);
  }
  return rsp.pkt.atomic_flag();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t keys =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::uint64_t segments =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;

  std::unique_ptr<sim::Simulator> sim;
  if (Status s = sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim);
      !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return 1;
  }
  if (Status s = sim->register_cmc(hmcsim_builtin_bloomset_register,
                                   hmcsim_builtin_bloomset_execute,
                                   hmcsim_builtin_bloomset_str);
      !s.ok()) {
    std::fprintf(stderr, "register_cmc: %s\n", s.to_string().c_str());
    return 1;
  }

  const std::uint64_t base = 0x10000;
  const std::uint64_t start_cycle = sim->cycle();

  // Insert the key set; every op is one 2-FLIT request + 2-FLIT response.
  Xoshiro256 rng(7);
  std::uint64_t already = 0;
  for (std::uint64_t i = 0; i < keys; ++i) {
    const std::uint64_t key = rng();
    if (bloom_insert(*sim, base, segments, key)) {
      ++already;  // Pre-insert hit: a false positive among inserts.
    }
  }
  const std::uint64_t insert_cycles = sim->cycle() - start_cycle;

  // Re-inserting the same keys must now always report "present".
  Xoshiro256 replay(7);
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < keys; ++i) {
    if (bloom_insert(*sim, base, segments, replay())) {
      ++hits;
    }
  }

  // Fresh keys estimate the false-positive rate.
  Xoshiro256 fresh(99);
  std::uint64_t false_pos = 0;
  const std::uint64_t probes = keys;
  for (std::uint64_t i = 0; i < probes; ++i) {
    if (bloom_insert(*sim, base, segments, fresh())) {
      ++false_pos;
    }
  }

  std::printf("bloom filter: %llu segments x 128 bits, %llu keys\n",
              static_cast<unsigned long long>(segments),
              static_cast<unsigned long long>(keys));
  std::printf("insert phase: %llu cycles (%.2f cycles/op), %llu pre-hits\n",
              static_cast<unsigned long long>(insert_cycles),
              static_cast<double>(insert_cycles) /
                  static_cast<double>(keys),
              static_cast<unsigned long long>(already));
  std::printf("replay hits : %llu / %llu (must be 100%%)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(keys));
  std::printf("false pos.  : %llu / %llu probes (%.2f%%)\n",
              static_cast<unsigned long long>(false_pos),
              static_cast<unsigned long long>(probes),
              100.0 * static_cast<double>(false_pos) /
                  static_cast<double>(probes));
  return hits == keys ? 0 : 1;
}
