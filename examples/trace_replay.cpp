// trace_replay.cpp — trace-driven simulation with energy estimation.
//
// Builds a synthetic request trace (or loads one from disk), replays it
// against both evaluation devices, and prints traffic statistics plus the
// activity-based energy estimate (the paper's §VII future-work feature).
//
//   ./build/examples/trace_replay [trace_file]
#include <cstdio>
#include <memory>
#include <string>

#include "src/host/trace_replay.hpp"
#include "src/power/power_model.hpp"
#include "src/sim/sim_stats.hpp"
#include "src/sim/stats_report.hpp"

using namespace hmcsim;

namespace {

/// A small mixed workload: a write burst, a scan, and an atomic storm.
std::vector<host::TraceRecord> synthetic_trace() {
  host::TraceBuilder builder(/*num_links=*/4);
  // Phase 1: write 64 blocks.
  for (std::uint64_t i = 0; i < 64; ++i) {
    builder.add(spec::Rqst::WR64, i * 64,
                {i, i + 1, i + 2, i + 3, i + 4, i + 5, i + 6, i + 7},
                /*gap=*/0);
  }
  // Phase 2: read them back.
  for (std::uint64_t i = 0; i < 64; ++i) {
    builder.add(spec::Rqst::RD64, i * 64, {}, /*gap=*/1);
  }
  // Phase 3: atomic increments hammering one counter.
  for (int i = 0; i < 32; ++i) {
    builder.add(spec::Rqst::INC8, 0x8000, {}, /*gap=*/0);
  }
  return builder.take();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<host::TraceRecord> records;
  if (argc > 1) {
    if (Status s = host::load_trace(argv[1], records); !s.ok()) {
      std::fprintf(stderr, "load_trace: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("loaded %zu records from %s\n", records.size(), argv[1]);
  } else {
    records = synthetic_trace();
    const std::string path = "/tmp/hmcsim_example.trace";
    if (host::save_trace(path, records).ok()) {
      std::printf("synthetic trace (%zu records) saved to %s\n",
                  records.size(), path.c_str());
    }
  }

  const power::PowerModel power_model;
  for (const auto& [cfg, name] :
       {std::pair{sim::Config::hmc_4link_4gb(), "4Link-4GB"},
        std::pair{sim::Config::hmc_8link_8gb(), "8Link-8GB"}}) {
    std::unique_ptr<sim::Simulator> sim;
    if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
      std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
      return 1;
    }
    const auto before = sim::collect_stats(*sim);
    host::ReplayResult result;
    if (Status s = host::replay_trace(*sim, records, result); !s.ok()) {
      std::fprintf(stderr, "replay: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("\n== %s ==\n", name);
    std::printf("issued %llu requests, received %llu responses "
                "(%llu errors) in %llu cycles; %llu retries\n",
                static_cast<unsigned long long>(result.requests_issued),
                static_cast<unsigned long long>(result.responses_received),
                static_cast<unsigned long long>(result.error_responses),
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.send_retries));
    std::printf("%s", sim::format_stats(*sim).c_str());

    const power::Activity activity =
        power::delta(before, sim::collect_stats(*sim), sim->num_devices());
    const power::EnergyReport energy = power_model.estimate(activity);
    std::printf("%s", power::PowerModel::format(
                          energy, power_model.segment_ns(activity))
                          .c_str());
  }
  return 0;
}
